// Package worker implements ERDOS' worker runtime (§6 of the paper): it
// instantiates a dataflow graph's streams and operators, executes callbacks
// on the execution lattice, maintains per-stream statistics that drive
// deadline start and end conditions, arms deadlines, and orchestrates
// deadline exception handlers under the Abort and Continue policies.
//
// A Worker owns a broadcaster for every stream of the graph but only
// instantiates the operators assigned to it, so the same type serves both
// the single-process local mode and the leader/worker distributed mode: the
// comm layer forwards messages of remote readers by subscribing to local
// broadcasters and injects messages from remote writers via Inject.
package worker

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/lattice"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// Options configures a Worker.
type Options struct {
	// Name identifies the worker; operators whose Placement matches (or is
	// empty when Local is set) run here.
	Name string
	// Local instantiates every operator regardless of placement.
	Local bool
	// Owns overrides placement when non-nil: an operator is instantiated
	// here iff Owns(spec) (used by the leader's scheduling decisions).
	Owns func(spec string) bool
	// Threads sizes the lattice's goroutine pool (default 8).
	Threads int
	// Clock drives deadline enforcement (default the wall clock).
	Clock deadline.Clock
	// HistoryDepth bounds how many logical times of state versions and
	// tracking entries are retained behind the low watermark (default 64).
	HistoryDepth uint64
	// WrapCallback, when non-nil, wraps every operator callback before it
	// is submitted to the lattice (fault-injection stalls, tracing). It is
	// called once per callback with the operator name.
	WrapCallback func(op string, f func()) func()
}

// Stats is a snapshot of a worker's counters.
type Stats struct {
	Delivered        uint64
	DroppedStale     uint64
	WatermarkBatches uint64
	DeadlineMisses   uint64
	HandlerRuns      uint64
	InsertedWMs      uint64
	// UrgencyMisses counts callbacks the lattice dispatched only after their
	// operator's deadline Di had already expired — queueing-induced misses,
	// the scheduler-side congestion signal.
	UrgencyMisses uint64
	// HandlerDelays records the delay between each deadline expiry and the
	// start of its exception handler.
	HandlerDelays []time.Duration
}

// Congestion is a snapshot of a worker's queueing pressure, shipped in
// heartbeats so the leader's placement can steer operators away from
// saturated workers: instantaneous lattice queue depths plus the cumulative
// urgency-miss count.
type Congestion struct {
	// Ready counts callbacks sitting in lattice run queues; Pending counts
	// callbacks submitted but not yet completed.
	Ready   int64
	Pending int64
	// UrgencyMisses counts callbacks dispatched after their deadline expired.
	UrgencyMisses uint64
}

// Worker executes the operators of one graph partition.
type Worker struct {
	name    string
	lat     *lattice.Lattice
	mon     *deadline.Monitor
	clock   deadline.Clock
	history uint64
	wrapCB  func(op string, f func()) func()
	// gm is the composite view of every graph this worker hosts: the base
	// graph from New plus tenant graphs added by Extend. Retained so
	// failover and tenant admission can instantiate operators after New.
	gm *graph.Multi

	// bcast is the broadcaster-per-stream map, read lock-free on the
	// data-plane hot path (Inject). Extend publishes a copied map with the
	// new tenant's streams added; extendMu serializes the writers.
	bcast    atomic.Pointer[map[stream.ID]*stream.Broadcaster]
	extendMu sync.Mutex
	// opsMu guards ops and producers: both were write-once at New until
	// Adopt (failover re-placement) started installing operators at runtime.
	opsMu sync.RWMutex
	ops   map[string]*opRuntime
	// producers maps each stream to the local operator writing it, for
	// deadline-slack queries on outbound messages (SendDeadline).
	producers map[stream.ID]*opRuntime

	// Per-message counters are atomics: countDelivered/countStale sit on the
	// data-plane hot path and must not funnel every message through one
	// mutex. Only the handler-delay slice keeps a lock.
	delivered     atomic.Uint64
	stale         atomic.Uint64
	wmBatches     atomic.Uint64
	misses        atomic.Uint64
	handlerRuns   atomic.Uint64
	insertedWMs   atomic.Uint64
	urgencyMisses atomic.Uint64

	handlerMu     sync.Mutex
	handlerDelays []time.Duration

	// extFrontiers tracks received watermarks for subscription-only
	// consumers (extraction points): streams delivered here for the
	// application, not for any local operator. Without an operator runtime
	// there is no inWM entry, so TrackFrontier taps the broadcaster
	// directly; Frontiers folds these in so the leader's consistent-cut
	// intersection covers extraction points too.
	extMu        sync.Mutex
	extFrontiers map[stream.ID]uint64

	wg sync.WaitGroup
}

// New builds a worker for graph g. The graph must already Validate().
func New(g *graph.Graph, opts Options) (*Worker, error) {
	gm, err := graph.NewMulti(g)
	if err != nil {
		return nil, err
	}
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	if opts.Clock == nil {
		opts.Clock = deadline.Real{}
	}
	if opts.HistoryDepth == 0 {
		opts.HistoryDepth = 64
	}
	w := &Worker{
		name:      opts.Name,
		lat:       lattice.New(opts.Threads),
		mon:       deadline.NewMonitor(opts.Clock),
		clock:     opts.Clock,
		history:   opts.HistoryDepth,
		wrapCB:    opts.WrapCallback,
		gm:        gm,
		ops:       make(map[string]*opRuntime),
		producers: make(map[stream.ID]*opRuntime),
	}
	bcast := make(map[stream.ID]*stream.Broadcaster)
	for _, s := range g.Streams() {
		bcast[s.ID] = stream.NewBroadcaster(s.ID, s.Name)
	}
	w.bcast.Store(&bcast)
	for _, spec := range g.Operators() {
		switch {
		case opts.Local:
			// instantiate everything
		case opts.Owns != nil:
			if !opts.Owns(spec.Name) {
				continue
			}
		default:
			if spec.Placement != opts.Name {
				continue
			}
		}
		rt, err := w.newOpRuntime(spec, gm, nil, 0, nil)
		if err != nil {
			w.Stop()
			return nil, err
		}
		w.ops[spec.Name] = rt
		for _, id := range spec.Outputs {
			w.producers[id] = rt
		}
	}
	w.wireFeeds(g.DeadlineFeeds())
	return w, nil
}

// View returns the composite graph view this worker hosts: the base graph
// plus every tenant graph added by Extend.
func (w *Worker) View() graph.View { return w.gm }

// wireFeeds subscribes each dynamic-deadline feed to its stream.
func (w *Worker) wireFeeds(feeds []graph.DeadlineFeed) {
	for _, feed := range feeds {
		b, ok := w.bc(feed.Stream)
		if !ok {
			continue
		}
		target := feed.Target
		b.Subscribe(stream.SubscriberFunc(func(_ stream.ID, m message.Message) {
			if !m.IsData() {
				return
			}
			if d, ok := m.Payload.(time.Duration); ok {
				target.Update(m.Timestamp, d)
			}
		}))
	}
}

// Extend adds a tenant graph to this worker at runtime: broadcasters for
// the new streams are published copy-on-write (the data-plane hot path
// reads the map lock-free) and the tenant's deadline feeds are wired. No
// operators are instantiated — they arrive through Adopt when the leader's
// schedule assigns them here. The sub-graph must be fully built before
// Extend and never mutated afterwards; its operator names must not collide
// with any graph this worker already hosts.
func (w *Worker) Extend(sub *graph.Graph) error {
	w.extendMu.Lock()
	defer w.extendMu.Unlock()
	if err := w.gm.Add(sub); err != nil {
		return err
	}
	old := *w.bcast.Load()
	next := make(map[stream.ID]*stream.Broadcaster, len(old)+len(sub.Streams()))
	for id, b := range old {
		next[id] = b
	}
	for _, s := range sub.Streams() {
		if _, dup := next[s.ID]; !dup {
			next[s.ID] = stream.NewBroadcaster(s.ID, s.Name)
		}
	}
	w.bcast.Store(&next)
	w.wireFeeds(sub.DeadlineFeeds())
	return nil
}

// bc returns the broadcaster of stream id from the current COW map.
func (w *Worker) bc(id stream.ID) (*stream.Broadcaster, bool) {
	b, ok := (*w.bcast.Load())[id]
	return b, ok
}

// Broadcaster returns the local writer end of stream id.
func (w *Worker) Broadcaster(id stream.ID) (*stream.Broadcaster, bool) {
	return w.bc(id)
}

// Inject sends m on stream id, as the application (ingest streams) or the
// comm layer (messages from remote writers) would.
func (w *Worker) Inject(id stream.ID, m message.Message) error {
	b, ok := w.bc(id)
	if !ok {
		return fmt.Errorf("worker %q: inject on unknown stream %d", w.name, id)
	}
	return b.Send(m)
}

// Subscribe registers fn to observe every message on stream id (extract
// streams, the comm layer's remote forwarding, instrumentation).
func (w *Worker) Subscribe(id stream.ID, fn func(message.Message)) error {
	b, ok := w.bc(id)
	if !ok {
		return fmt.Errorf("worker %q: subscribe on unknown stream %d", w.name, id)
	}
	b.Subscribe(stream.SubscriberFunc(func(_ stream.ID, m message.Message) { fn(m) }))
	return nil
}

// SendDeadline reports the absolute instant by which the operator producing
// stream id must finish timestamp ts — the deadline slack available to the
// data plane when forwarding that timestamp's output to remote consumers.
// It returns false when the producing operator is not local, declares no
// timestamp deadline, or has not yet seen ts arrive (no deadline armed).
func (w *Worker) SendDeadline(id stream.ID, ts timestamp.Timestamp) (time.Time, bool) {
	w.opsMu.RLock()
	rt, ok := w.producers[id]
	w.opsMu.RUnlock()
	if !ok || len(rt.ttSpecs) == 0 || ts.IsTop() {
		return time.Time{}, false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	tw, ok := rt.times[ts.L]
	if !ok || !tw.hasArrival {
		return time.Time{}, false
	}
	return tw.firstArrival.Add(rt.ttSpecs[0].Value.For(tw.ts)), true
}

// Quiesce waits for every scheduled callback to complete.
func (w *Worker) Quiesce() { w.lat.Quiesce() }

// WaitHandlers waits for in-flight deadline exception handlers.
func (w *Worker) WaitHandlers() { w.wg.Wait() }

// Stop tears the worker down.
func (w *Worker) Stop() {
	w.mon.Stop()
	w.lat.Stop()
	w.wg.Wait()
}

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() Stats {
	s := Stats{
		Delivered:        w.delivered.Load(),
		DroppedStale:     w.stale.Load(),
		WatermarkBatches: w.wmBatches.Load(),
		DeadlineMisses:   w.misses.Load(),
		HandlerRuns:      w.handlerRuns.Load(),
		InsertedWMs:      w.insertedWMs.Load(),
		UrgencyMisses:    w.urgencyMisses.Load(),
	}
	w.handlerMu.Lock()
	s.HandlerDelays = append([]time.Duration(nil), w.handlerDelays...)
	w.handlerMu.Unlock()
	return s
}

// Congestion reports the worker's current queueing pressure.
func (w *Worker) Congestion() Congestion {
	ready, pending := w.lat.Depth()
	return Congestion{Ready: ready, Pending: pending, UrgencyMisses: w.urgencyMisses.Load()}
}

// Operator returns diagnostic information about a local operator.
func (w *Worker) Operator(name string) (OpInfo, bool) {
	w.opsMu.RLock()
	rt, ok := w.ops[name]
	w.opsMu.RUnlock()
	if !ok {
		return OpInfo{}, false
	}
	return rt.info(), true
}

// Has reports whether the named operator is instantiated on this worker.
func (w *Worker) Has(name string) bool {
	w.opsMu.RLock()
	_, ok := w.ops[name]
	w.opsMu.RUnlock()
	return ok
}

// Checkpoint snapshots the named operator's time-versioned state at its
// newest committed watermark. ok is false when the operator is not local or
// has not committed yet.
func (w *Worker) Checkpoint(name string) (state.Checkpoint, bool) {
	w.opsMu.RLock()
	rt, ok := w.ops[name]
	w.opsMu.RUnlock()
	if !ok {
		return state.Checkpoint{}, false
	}
	return state.Snapshot(rt.st)
}

// Checkpoints snapshots every local operator with committed state, keyed by
// operator name — the lazy checkpoint payload shipped to the leader with
// each heartbeat.
func (w *Worker) Checkpoints() map[string]state.Checkpoint {
	w.opsMu.RLock()
	names := make([]string, 0, len(w.ops))
	for name := range w.ops {
		names = append(names, name)
	}
	w.opsMu.RUnlock()
	out := make(map[string]state.Checkpoint, len(names))
	for _, name := range names {
		if cp, ok := w.Checkpoint(name); ok {
			out[name] = cp
		}
	}
	return out
}

// TrackFrontier registers a subscription-only consumed stream (an
// extraction point) for frontier reporting: a tap on the stream's
// broadcaster records each delivered watermark, standing in for the input
// watermark an operator runtime would have kept. Idempotent per stream.
// Broadcaster delivery is FIFO per stream, so when the tap has seen
// watermark L every data message at or below L has been handed to the
// application's subscribers too.
func (w *Worker) TrackFrontier(id stream.ID) error {
	w.extMu.Lock()
	if w.extFrontiers == nil {
		w.extFrontiers = make(map[stream.ID]uint64)
	}
	if _, ok := w.extFrontiers[id]; ok {
		w.extMu.Unlock()
		return nil
	}
	w.extFrontiers[id] = 0
	w.extMu.Unlock()
	return w.Subscribe(id, func(m message.Message) {
		if m.IsData() {
			return
		}
		w.extMu.Lock()
		if m.Timestamp.L > w.extFrontiers[id] {
			w.extFrontiers[id] = m.Timestamp.L
		}
		w.extMu.Unlock()
	})
}

// Frontiers reports, per input stream, the lowest received input watermark
// across this worker's local operators consuming it. Everything at or below
// a stream's frontier has been delivered locally (watermarks trail their
// data FIFO per stream), so an upstream producer restored at a cut no newer
// than the frontier can never skip an output this worker still needs.
// Shipped with heartbeats; the leader intersects survivors' frontiers to
// pick the consistent restore cut during failover. Tracked extraction
// points (TrackFrontier) report alongside operator inputs, minimum-merged
// when a stream is both.
func (w *Worker) Frontiers() map[stream.ID]uint64 {
	w.opsMu.RLock()
	rts := make([]*opRuntime, 0, len(w.ops))
	for _, rt := range w.ops {
		rts = append(rts, rt)
	}
	w.opsMu.RUnlock()
	out := make(map[stream.ID]uint64)
	for _, rt := range rts {
		rt.mu.Lock()
		for i, id := range rt.spec.Inputs {
			var l uint64
			if rt.inWM[i].have {
				l = rt.inWM[i].ts.L
			}
			if cur, ok := out[id]; !ok || l < cur {
				out[id] = l
			}
		}
		rt.mu.Unlock()
	}
	w.extMu.Lock()
	for id, l := range w.extFrontiers {
		if cur, ok := out[id]; !ok || l < cur {
			out[id] = l
		}
	}
	w.extMu.Unlock()
	return out
}

// Adopt instantiates the named operator on this worker at runtime — the
// failover path re-placing a dead worker's operators onto a survivor. When
// cp is non-nil the operator's state is restored at the newest checkpointed
// version at or below restoreAt (the consistent cut the leader computed
// from surviving consumers' frontiers) and every input watermark starts at
// the restored version, so replayed input at or below the restore point is
// dropped as stale instead of double-applied — while everything after it is
// re-processed, regenerating outputs the failed worker may have produced
// but never delivered. Pass math.MaxUint64 as restoreAt to restore at the
// newest version unconditionally.
//
// replay optionally carries each input stream's retained recent messages:
// they are fed to the operator after the watermark fence is installed but
// before the live input subscriptions, so a replayed window is applied in
// order and can never be shadowed by a racing live watermark. Adopting an
// operator that is already local is a no-op.
func (w *Worker) Adopt(name string, cp *state.Checkpoint, restoreAt uint64, replay map[stream.ID][]message.Message) error {
	var spec *operator.Spec
	for _, s := range w.gm.Operators() {
		if s.Name == name {
			spec = s
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("worker %q: adopt unknown operator %q", w.name, name)
	}
	w.opsMu.Lock()
	if _, dup := w.ops[name]; dup {
		w.opsMu.Unlock()
		return nil
	}
	w.opsMu.Unlock()
	// Instantiate outside the lock: newOpRuntime subscribes to input
	// broadcasters, and a concurrent delivery could re-enter worker
	// counters. The restored watermarks are installed before the input
	// subscriptions inside newOpRuntime, so no message can slip under them.
	rt, err := w.newOpRuntime(spec, w.gm, cp, restoreAt, replay)
	if err != nil {
		return err
	}
	w.opsMu.Lock()
	w.ops[name] = rt
	for _, id := range spec.Outputs {
		w.producers[id] = rt
	}
	w.opsMu.Unlock()
	return nil
}

// RewindOpen discards the named operator's open (uncommitted) timestamps:
// every working view above the input low watermark whose completion has not
// been scheduled is dropped, and already-queued callbacks for those times
// become no-ops (they re-check rt.times at dispatch). The committed state
// and the input watermark fences are untouched.
//
// This is the consumer half of relay-failure recovery: a dead relay loses a
// contiguous suffix of its stream, and the tail of what DID arrive may sit
// partially applied in an open view — a tick whose data landed but whose
// closing watermark died in the relay's queue. The producer force-replays
// the retained window from the last closed tick; rewinding first means the
// replayed data rebuilds those ticks from the committed state instead of
// double-applying into a dirty view. Only call it for operators all of
// whose inputs routed through the dead relay — an unaffected input's open
// contributions would be discarded with no replay to rebuild them.
func (w *Worker) RewindOpen(name string) {
	w.opsMu.RLock()
	rt, ok := w.ops[name]
	w.opsMu.RUnlock()
	if !ok {
		return
	}
	rt.mu.Lock()
	for l, tw := range rt.times {
		if !tw.done && !tw.scheduled && !tw.handledAbort {
			delete(rt.times, l)
		}
	}
	rt.mu.Unlock()
}

// LocalOps returns the names of the operators instantiated on this worker.
func (w *Worker) LocalOps() []string {
	w.opsMu.RLock()
	defer w.opsMu.RUnlock()
	out := make([]string, 0, len(w.ops))
	for name := range w.ops {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Release freezes the named operators (nil means every local operator),
// snapshots their state and removes them from this worker — the donor side
// of a planned drain or migration. A released operator stops accepting
// input and producing output the moment its retired flag is set; a
// callback already dispatched may still commit or send once more, which is
// safe: the adopter restores at the leader's consistent cut and consumers
// stale-drop regenerated duplicates, the same contract failover relies on.
// The returned checkpoints are what the adopters restore from.
func (w *Worker) Release(names []string) map[string]state.Checkpoint {
	w.opsMu.Lock()
	if names == nil {
		names = make([]string, 0, len(w.ops))
		for name := range w.ops {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	rts := make(map[string]*opRuntime, len(names))
	for _, name := range names {
		if rt, ok := w.ops[name]; ok {
			rt.retired.Store(true)
			rts[name] = rt
		}
	}
	w.opsMu.Unlock()
	out := make(map[string]state.Checkpoint, len(rts))
	for name, rt := range rts {
		if cp, ok := state.Snapshot(rt.st); ok {
			out[name] = cp
		}
	}
	w.opsMu.Lock()
	for name, rt := range rts {
		delete(w.ops, name)
		for _, id := range rt.spec.Outputs {
			if w.producers[id] == rt {
				delete(w.producers, id)
			}
		}
	}
	w.opsMu.Unlock()
	return out
}

// OpUrgencyMisses reports the cumulative urgency-miss count per local
// operator — the per-tenant slice of the worker-wide counter Congestion
// carries. The leader differences consecutive heartbeats and aggregates by
// tenant, so one tenant's blown deadlines are attributable to it alone.
func (w *Worker) OpUrgencyMisses() map[string]uint64 {
	w.opsMu.RLock()
	defer w.opsMu.RUnlock()
	out := make(map[string]uint64, len(w.ops))
	for name, rt := range w.ops {
		if n := rt.urgMiss.Load(); n > 0 {
			out[name] = n
		}
	}
	return out
}

// OpInfo is a diagnostic snapshot of one operator.
type OpInfo struct {
	Name           string
	LowWatermark   timestamp.Timestamp
	HasWatermark   bool
	PendingTimes   int
	CommittedTimes int
}

// --- operator runtime ---

type opRuntime struct {
	w    *Worker
	spec *operator.Spec
	q    *lattice.OpQueue
	st   state.Store
	outs []operator.Output
	// wrap decorates callbacks before lattice submission (stall injection);
	// nil means submit as-is.
	wrap func(f func()) func()

	ttTrackers []*deadline.TimestampTracker
	ttSpecs    []operator.TimestampDeadlineSpec
	freq       []freqWiring

	// retired freezes the runtime: a drained/migrating operator stops
	// accepting input and running callbacks the instant the flag is set,
	// while its state remains snapshottable. Checked lock-free on every
	// receive and dispatch.
	retired atomic.Bool
	// urgMiss counts this operator's urgency misses (deadline already
	// expired when the lattice dispatched the callback) — the per-operator
	// slice of Worker.urgencyMisses used for tenant attribution.
	urgMiss atomic.Uint64

	mu        sync.Mutex
	inWM      []wmState
	times     map[uint64]*timeWork
	committed int
}

type wmState struct {
	ts   timestamp.Timestamp
	have bool
}

type timeWork struct {
	ts           timestamp.Timestamp
	view         any
	viewMade     bool
	gate         *operator.Gate
	firstArrival time.Time
	hasArrival   bool
	scheduled    bool // watermark callback submitted
	handledAbort bool // an Abort DEH took over this time
	done         bool // watermark processing finished (committed or aborted)
}

func (w *Worker) newOpRuntime(spec *operator.Spec, g graph.View, cp *state.Checkpoint, restoreAt uint64, replay map[stream.ID][]message.Message) (*opRuntime, error) {
	// Operators in an affinity group share a home shard on the lattice so a
	// producer→consumer chain's callbacks stay on one goroutine's queue.
	var q *lattice.OpQueue
	if gid, ok := g.AffinityOf(spec.Name); ok {
		q = w.lat.NewOpQueuePinned(spec.Mode, gid)
	} else {
		q = w.lat.NewOpQueue(spec.Mode)
	}
	rt := &opRuntime{
		w:     w,
		spec:  spec,
		q:     q,
		times: make(map[uint64]*timeWork),
		inWM:  make([]wmState, len(spec.Inputs)),
	}
	if w.wrapCB != nil {
		name := spec.Name
		rt.wrap = func(f func()) func() { return w.wrapCB(name, f) }
	}
	if spec.NewState != nil {
		rt.st = spec.NewState()
	} else {
		rt.st = state.NewNone()
	}
	if cp != nil {
		// Restore before any input subscription exists: the committed state
		// reappears at the chosen version's watermark and every input
		// watermark starts there, so replayed traffic at or below it is
		// stale-dropped rather than double-applied. The fence is the
		// watermark actually restored — possibly older than the newest
		// checkpointed version, when a surviving consumer's frontier shows
		// that later outputs of the failed worker were lost in flight and
		// must be regenerated.
		fenceL, err := state.RestoreAt(rt.st, *cp, restoreAt)
		if err != nil {
			return nil, fmt.Errorf("worker %q: restore %q: %w", w.name, spec.Name, err)
		}
		ts := timestamp.New(fenceL)
		for i := range rt.inWM {
			rt.inWM[i] = wmState{ts: ts, have: true}
		}
	}
	for i, id := range spec.Outputs {
		b, ok := w.bc(id)
		if !ok {
			return nil, fmt.Errorf("worker %q: operator %q output stream %d missing", w.name, spec.Name, id)
		}
		rt.outs = append(rt.outs, &gatedOutput{rt: rt, b: b, index: i})
	}
	for _, ds := range spec.Deadlines {
		ds := ds
		tr := deadline.NewTimestampTracker(w.mon, ds.Value, ds.Policy, nil)
		tr.Start = ds.Start
		tr.End = ds.End
		tr.OnMiss = func(m deadline.Miss) { rt.onMiss(ds, m) }
		rt.ttTrackers = append(rt.ttTrackers, tr)
		rt.ttSpecs = append(rt.ttSpecs, ds)
	}
	// Feed the replayed window through the normal receive path before the
	// live subscriptions exist: replayed messages enqueue in order, the
	// restored fence drops anything already applied, and no live message
	// can overtake them.
	for i, id := range spec.Inputs {
		for _, m := range replay[id] {
			rt.onReceive(i, m)
		}
	}
	for i, id := range spec.Inputs {
		input := i
		b, ok := w.bc(id)
		if !ok {
			return nil, fmt.Errorf("worker %q: operator %q input stream %d missing", w.name, spec.Name, id)
		}
		b.Subscribe(stream.SubscriberFunc(func(_ stream.ID, m message.Message) {
			rt.onReceive(input, m)
		}))
	}
	for _, fs := range spec.FrequencyDeadlines {
		fs := fs
		fr := deadline.NewFrequencyTracker(w.mon, fs.Value, func(last timestamp.Timestamp, _ deadline.Miss) {
			rt.insertWatermark(fs, last)
		})
		rt.freqAttach(fs.Input, fr)
	}
	return rt, nil
}

// freqTrackers are attached per input; stored on the runtime for receive
// hooks.
type freqWiring struct {
	input int
	fr    *deadline.FrequencyTracker
}

func (rt *opRuntime) freqAttach(input int, fr *deadline.FrequencyTracker) {
	rt.freq = append(rt.freq, freqWiring{input: input, fr: fr})
}

// onReceive handles a message delivered on input i.
func (rt *opRuntime) onReceive(i int, m message.Message) {
	if rt.retired.Load() {
		return
	}
	rt.mu.Lock()
	if m.IsWatermark() {
		ws := &rt.inWM[i]
		if ws.have && m.Timestamp.LessEq(ws.ts) {
			// Stale or duplicate watermark (e.g. the real input arriving
			// after a frequency deadline already simulated it).
			rt.w.countStale()
			rt.mu.Unlock()
			return
		}
		ws.ts, ws.have = m.Timestamp, true
		tw := rt.timeLocked(m.Timestamp)
		rt.noteArrivalLocked(tw)
		for _, tr := range rt.ttTrackers {
			tr.ObserveReceive(m.Timestamp, true)
		}
		for _, fw := range rt.freq {
			if fw.input == i {
				fw.fr.ObserveWatermark(m.Timestamp)
			}
		}
		rt.scheduleCompleteLocked()
		rt.mu.Unlock()
		rt.w.countDelivered()
		return
	}

	// Data message.
	low, haveLow := rt.lowWatermarkLocked()
	if haveLow && m.Timestamp.L <= low.L && !low.IsTop() {
		rt.w.countStale()
		rt.mu.Unlock()
		return
	}
	tw := rt.timeLocked(m.Timestamp)
	rt.noteArrivalLocked(tw)
	for _, tr := range rt.ttTrackers {
		tr.ObserveReceive(m.Timestamp, false)
	}
	var run func()
	if rt.spec.OnData != nil && !tw.handledAbort {
		input := i
		msg := m
		l := m.Timestamp.L
		run = func() { rt.runData(l, input, msg) }
	}
	dl := rt.deadlineLocked(tw)
	rt.mu.Unlock()
	rt.w.countDelivered()
	if run != nil {
		if rt.wrap != nil {
			run = rt.wrap(run)
		}
		rt.submit(lattice.KindMessage, m.Timestamp, dl, run)
	}
}

// deadlineLocked reports the absolute deadline Di (nanoseconds on the
// worker's clock epoch) by which the operator must finish tw's timestamp —
// the instant the lattice uses for EDF dispatch — or lattice.NoDeadline when
// the operator declares no timestamp deadline or ts has no arrival anchor
// yet. Caller holds rt.mu.
func (rt *opRuntime) deadlineLocked(tw *timeWork) int64 {
	if len(rt.ttSpecs) == 0 || !tw.hasArrival {
		return lattice.NoDeadline
	}
	return tw.firstArrival.Add(rt.ttSpecs[0].Value.For(tw.ts)).UnixNano()
}

// submit hands a callback to the lattice carrying the operator's deadline.
// Deadline-bearing callbacks check, at the instant the lattice dispatches
// them, whether the deadline already expired while they queued: such
// urgency misses are counted as the scheduler-side congestion signal the
// leader's placement consumes. The check wraps outside any fault-injection
// wrapper so an injected stall does not masquerade as queueing delay.
func (rt *opRuntime) submit(kind lattice.Kind, ts timestamp.Timestamp, dl int64, run func()) {
	if dl != lattice.NoDeadline {
		inner := run
		run = func() {
			if rt.w.clock.Now().UnixNano() > dl {
				rt.w.urgencyMisses.Add(1)
				rt.urgMiss.Add(1)
			}
			inner()
		}
	}
	rt.w.lat.SubmitDeadline(rt.q, kind, ts, dl, run)
}

// runData executes the data callback for one message.
func (rt *opRuntime) runData(l uint64, input int, m message.Message) {
	if rt.retired.Load() {
		return
	}
	rt.mu.Lock()
	tw, ok := rt.times[l]
	if !ok || tw.handledAbort || tw.done {
		rt.mu.Unlock()
		return
	}
	ctx := rt.contextLocked(tw)
	rt.mu.Unlock()
	rt.spec.OnData(ctx, input, m)
}

// scheduleCompleteLocked submits watermark callbacks for every pending
// logical time at or below the operator's low watermark. Caller holds rt.mu.
func (rt *opRuntime) scheduleCompleteLocked() {
	low, ok := rt.lowWatermarkLocked()
	if !ok {
		return
	}
	var due []uint64
	for l, tw := range rt.times {
		if tw.scheduled || tw.done {
			continue
		}
		if l <= low.L || low.IsTop() {
			due = append(due, l)
		}
	}
	sort.Slice(due, func(a, b int) bool { return due[a] < due[b] })
	for _, l := range due {
		tw := rt.times[l]
		tw.scheduled = true
		ts := tw.ts
		run := func() { rt.runWatermark(ts) }
		if rt.wrap != nil {
			run = rt.wrap(run)
		}
		rt.submit(lattice.KindWatermark, ts, rt.deadlineLocked(tw), run)
	}
}

// runWatermark executes the watermark callback for a completed timestamp,
// then releases the output watermark and commits state (§6.2).
func (rt *opRuntime) runWatermark(ts timestamp.Timestamp) {
	if rt.retired.Load() {
		return
	}
	l := ts.L
	rt.mu.Lock()
	tw, ok := rt.times[l]
	if !ok || tw.done {
		rt.mu.Unlock()
		return
	}
	if tw.handledAbort {
		// An Abort DEH already produced output and state for this time.
		tw.done = true
		rt.gcLocked(l)
		rt.mu.Unlock()
		return
	}
	ctx := rt.contextLocked(tw)
	rt.mu.Unlock()

	if rt.spec.OnWatermark != nil {
		rt.spec.OnWatermark(ctx)
	}

	rt.mu.Lock()
	aborted := tw.gate != nil && tw.gate.Aborted()
	// Materialize the view if no callback did, so time-versioning advances
	// even for timestamps that left the state untouched.
	view := rt.viewLocked(tw)
	tw.done = true
	rt.committed++
	rt.gcLocked(l)
	rt.mu.Unlock()

	if aborted {
		// The DEH (Abort policy) released output and committed state.
		rt.st.Discard(ts, view)
		return
	}
	if rt.spec.AutoWatermark {
		for _, o := range rt.outs {
			// Errors here indicate the handler already closed or advanced
			// the stream; the stream invariants make that visible.
			_ = o.Send(message.Watermark(ts))
		}
	}
	rt.st.Commit(ts, view)
	rt.w.countWatermarkBatch()
}

// onMiss orchestrates a deadline exception handler (§5.4).
func (rt *opRuntime) onMiss(spec operator.TimestampDeadlineSpec, miss deadline.Miss) {
	rt.w.countMiss()
	if spec.Handler == nil {
		return
	}
	rt.w.wg.Add(1)
	go func() {
		defer rt.w.wg.Done()
		started := rt.w.clock.Now()

		rt.mu.Lock()
		tw := rt.timeLocked(miss.Timestamp)
		var dirty any
		if tw.viewMade {
			dirty = tw.view
		}
		if miss.Policy == deadline.Abort {
			tw.handledAbort = true
			if tw.gate != nil {
				tw.gate.Abort()
			}
		}
		rt.mu.Unlock()

		committed, _ := rt.st.Committed(prevTime(miss.Timestamp))
		hctx := operator.NewHandlerContext(rt.spec.Name, miss, committed, dirty, rt.rawOutputs())
		spec.Handler(hctx)

		if miss.Policy == deadline.Abort && dirty != nil {
			// The handler amended the dirty state; publish it.
			rt.st.Commit(miss.Timestamp, dirty)
		}
		rt.w.recordHandler(started.Sub(miss.ExpiredAt))
	}()
}

// insertWatermark simulates the arrival of missing input on input stream i
// when a frequency deadline expires (§5.1): the next logical time's
// watermark is inserted with the lowest accuracy coordinate.
func (rt *opRuntime) insertWatermark(fs operator.FrequencyDeadlineSpec, last timestamp.Timestamp) {
	next := timestamp.New(last.L + 1)
	rt.w.countInserted()
	if fs.OnInsert != nil {
		fs.OnInsert(next)
	}
	rt.onReceive(fs.Input, message.Watermark(next))
}

// contextLocked builds the callback Context for tw. Caller holds rt.mu.
func (rt *opRuntime) contextLocked(tw *timeWork) *operator.Context {
	view := rt.viewLocked(tw)
	var rel time.Duration
	var abs time.Time
	hasDL := false
	if len(rt.ttSpecs) > 0 {
		rel = rt.ttSpecs[0].Value.For(tw.ts)
		if tw.hasArrival {
			abs = tw.firstArrival.Add(rel)
		} else {
			abs = rt.w.clock.Now().Add(rel)
		}
		hasDL = true
	}
	return operator.NewContext(rt.spec.Name, tw.ts, view, rt.outs, rel, abs, hasDL, tw.gate)
}

// viewLocked lazily creates the shared working view for a timestamp.
func (rt *opRuntime) viewLocked(tw *timeWork) any {
	if !tw.viewMade {
		tw.view = rt.st.View(tw.ts)
		tw.viewMade = true
	}
	return tw.view
}

// timeLocked returns (creating if needed) the work record for t's logical
// time.
func (rt *opRuntime) timeLocked(t timestamp.Timestamp) *timeWork {
	tw, ok := rt.times[t.L]
	if !ok {
		tw = &timeWork{ts: timestamp.New(t.L), gate: operator.NewGate()}
		rt.times[t.L] = tw
	}
	return tw
}

func (rt *opRuntime) noteArrivalLocked(tw *timeWork) {
	if !tw.hasArrival {
		tw.firstArrival = rt.w.clock.Now()
		tw.hasArrival = true
	}
}

// lowWatermarkLocked computes the minimum watermark across input streams.
func (rt *opRuntime) lowWatermarkLocked() (timestamp.Timestamp, bool) {
	if len(rt.inWM) == 0 {
		return timestamp.Timestamp{}, false
	}
	low := timestamp.Top()
	for _, ws := range rt.inWM {
		if !ws.have {
			return timestamp.Timestamp{}, false
		}
		low = timestamp.Min(low, ws.ts)
	}
	return low, true
}

// gcLocked discards finished work records far enough behind l.
func (rt *opRuntime) gcLocked(l uint64) {
	h := rt.w.history
	if l < h {
		return
	}
	cut := l - h
	for k, tw := range rt.times {
		if k < cut && tw.done {
			delete(rt.times, k)
		}
	}
	for _, tr := range rt.ttTrackers {
		tr.GCBelow(cut)
	}
	rt.st.GC(timestamp.New(cut))
}

// rawOutputs returns outputs without abort gating, for handlers.
func (rt *opRuntime) rawOutputs() []operator.Output {
	outs := make([]operator.Output, len(rt.outs))
	for i, o := range rt.outs {
		g := o.(*gatedOutput)
		outs[i] = &rawOutput{rt: rt, b: g.b, index: g.index}
	}
	return outs
}

func (rt *opRuntime) info() OpInfo {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	low, have := rt.lowWatermarkLocked()
	pending := 0
	for _, tw := range rt.times {
		if !tw.done {
			pending++
		}
	}
	return OpInfo{
		Name:           rt.spec.Name,
		LowWatermark:   low,
		HasWatermark:   have,
		PendingTimes:   pending,
		CommittedTimes: rt.committed,
	}
}

// gatedOutput feeds deadline end conditions and respects abort gating via
// Context; the Context itself checks the gate, so this type only needs the
// DEC observation hook.
type gatedOutput struct {
	rt    *opRuntime
	b     *stream.Broadcaster
	index int
}

// Send implements operator.Output.
func (o *gatedOutput) Send(m message.Message) error {
	if err := o.b.Send(m); err != nil {
		return err
	}
	o.rt.observeSend(o.index, m)
	return nil
}

// StreamID implements operator.Output.
func (o *gatedOutput) StreamID() stream.ID { return o.b.ID() }

// rawOutput is the handler-facing output: identical delivery, identical DEC
// observation, no gating (handlers must always be able to release output).
type rawOutput struct {
	rt    *opRuntime
	b     *stream.Broadcaster
	index int
}

// Send implements operator.Output.
func (o *rawOutput) Send(m message.Message) error {
	if err := o.b.Send(m); err != nil {
		return err
	}
	o.rt.observeSend(o.index, m)
	return nil
}

// StreamID implements operator.Output.
func (o *rawOutput) StreamID() stream.ID { return o.b.ID() }

// observeSend feeds the DEC of every timestamp deadline registered on the
// sending output.
func (rt *opRuntime) observeSend(output int, m message.Message) {
	for i, tr := range rt.ttTrackers {
		spec := rt.ttSpecs[i]
		if spec.Output == operator.AllOutputs || spec.Output == output {
			tr.ObserveSend(m.Timestamp, m.IsWatermark())
		}
	}
}

// prevTime returns a timestamp strictly below t's logical time for
// committed-state lookups (the DEH receives the state for t' < t).
func prevTime(t timestamp.Timestamp) timestamp.Timestamp {
	if t.L == 0 {
		return timestamp.Bottom()
	}
	return timestamp.New(t.L - 1)
}

// --- worker counters ---

func (w *Worker) countDelivered() { w.delivered.Add(1) }

func (w *Worker) countStale() { w.stale.Add(1) }

func (w *Worker) countWatermarkBatch() { w.wmBatches.Add(1) }

func (w *Worker) countMiss() { w.misses.Add(1) }

func (w *Worker) countInserted() { w.insertedWMs.Add(1) }

func (w *Worker) recordHandler(delay time.Duration) {
	w.handlerRuns.Add(1)
	w.handlerMu.Lock()
	w.handlerDelays = append(w.handlerDelays, delay)
	w.handlerMu.Unlock()
}
