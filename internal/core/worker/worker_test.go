package worker

import (
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

func ts(l uint64) timestamp.Timestamp { return timestamp.New(l) }

type sink struct {
	mu   sync.Mutex
	msgs []message.Message
}

func (s *sink) add(m message.Message) {
	s.mu.Lock()
	s.msgs = append(s.msgs, m)
	s.mu.Unlock()
}

func (s *sink) data() []message.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []message.Message
	for _, m := range s.msgs {
		if m.IsData() {
			out = append(out, m)
		}
	}
	return out
}

func (s *sink) watermarks() []timestamp.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []timestamp.Timestamp
	for _, m := range s.msgs {
		if m.IsWatermark() {
			out = append(out, m.Timestamp)
		}
	}
	return out
}

func mustWorker(t *testing.T, g *graph.Graph, opts Options) *Worker {
	t.Helper()
	opts.Local = true
	w, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func TestLinearPipeline(t *testing.T) {
	g := graph.New()
	in := g.AddStream("in", "int")
	mid := g.AddStream("mid", "int")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var wmOrder []uint64
	err := g.AddOperator(&operator.Spec{
		Name:          "double",
		Inputs:        []stream.ID{in},
		Outputs:       []stream.ID{mid},
		AutoWatermark: true,
		NewState:      func() state.Store { return state.Typed(0, state.CloneByValue[int]()) },
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			if err := ctx.Send(0, m.Timestamp, m.Payload.(int)*2); err != nil {
				t.Errorf("send: %v", err)
			}
		},
		OnWatermark: func(ctx *operator.Context) {
			mu.Lock()
			wmOrder = append(wmOrder, ctx.Timestamp.L)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{})
	out := &sink{}
	if err := w.Subscribe(mid, out.add); err != nil {
		t.Fatal(err)
	}
	for l := uint64(1); l <= 5; l++ {
		if err := w.Inject(in, message.Data(ts(l), int(l))); err != nil {
			t.Fatal(err)
		}
		if err := w.Inject(in, message.Watermark(ts(l))); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	d := out.data()
	if len(d) != 5 {
		t.Fatalf("sink got %d data messages, want 5", len(d))
	}
	for i, m := range d {
		if m.Payload.(int) != 2*(i+1) {
			t.Fatalf("payload[%d] = %v", i, m.Payload)
		}
	}
	wms := out.watermarks()
	if len(wms) != 5 {
		t.Fatalf("sink got %d watermarks, want 5 (auto-forwarded)", len(wms))
	}
	for i := 1; i < len(wms); i++ {
		if wms[i].Less(wms[i-1]) {
			t.Fatalf("forwarded watermarks out of order: %v", wms)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(wmOrder); i++ {
		if wmOrder[i] < wmOrder[i-1] {
			t.Fatalf("watermark callbacks out of order: %v", wmOrder)
		}
	}
}

func TestTwoInputSynchronization(t *testing.T) {
	// A planner-style operator must only run its watermark callback once
	// BOTH inputs are complete for the timestamp (§4.3).
	g := graph.New()
	objects := g.AddStream("objects", "int")
	lights := g.AddStream("lights", "int")
	plan := g.AddStream("plan", "int")
	_ = g.MarkIngest(objects)
	_ = g.MarkIngest(lights)
	type planState struct{ Objects, Lights int }
	var mu sync.Mutex
	var fired []planState
	err := g.AddOperator(&operator.Spec{
		Name:          "planner",
		Inputs:        []stream.ID{objects, lights},
		Outputs:       []stream.ID{plan},
		AutoWatermark: true,
		NewState: func() state.Store {
			return state.Typed(planState{}, state.CloneByValue[planState]())
		},
		OnData: func(ctx *operator.Context, input int, m message.Message) {
			// The context's view is a clone; mutate through the pointer
			// pattern by re-reading. For value states, accumulate counts
			// via closure-free approach: we keep it simple and only count
			// in the watermark callback using the message side effects.
			_ = input
		},
		OnWatermark: func(ctx *operator.Context) {
			mu.Lock()
			fired = append(fired, planState{})
			mu.Unlock()
			_ = ctx.Send(0, ctx.Timestamp, int(ctx.Timestamp.L))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{})
	out := &sink{}
	_ = w.Subscribe(plan, out.add)

	// Complete objects for t=1 but not lights: nothing must fire.
	_ = w.Inject(objects, message.Data(ts(1), 10))
	_ = w.Inject(objects, message.Watermark(ts(1)))
	w.Quiesce()
	mu.Lock()
	n := len(fired)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("watermark callback fired with incomplete input (%d times)", n)
	}
	// Completing lights releases the computation.
	_ = w.Inject(lights, message.Watermark(ts(1)))
	w.Quiesce()
	mu.Lock()
	n = len(fired)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("watermark callback fired %d times, want 1", n)
	}
	if len(out.data()) != 1 {
		t.Fatalf("plan output missing")
	}
}

type counterState struct{ N int }

func TestStateCommitPerTimestamp(t *testing.T) {
	g := graph.New()
	in := g.AddStream("in", "int")
	out := g.AddStream("out", "int")
	_ = g.MarkIngest(in)
	st := state.Typed(counterState{}, state.CloneByValue[counterState]())
	err := g.AddOperator(&operator.Spec{
		Name:          "acc",
		Inputs:        []stream.ID{in},
		Outputs:       []stream.ID{out},
		AutoWatermark: true,
		NewState:      func() state.Store { return st },
		OnWatermark: func(ctx *operator.Context) {
			// Views of value-typed states cannot be mutated in place (the
			// view is a copy); model mutation via Send + commit counting is
			// exercised elsewhere. Here we verify the view chain: each view
			// starts from the previous committed version.
			v := ctx.State().(counterState)
			_ = ctx.Send(0, ctx.Timestamp, v.N)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{})
	for l := uint64(1); l <= 3; l++ {
		_ = w.Inject(in, message.Watermark(ts(l)))
	}
	w.Quiesce()
	if st.Versions() != 3 {
		t.Fatalf("committed %d versions, want 3", st.Versions())
	}
}

type ptrState struct{ Items []int }

func clonePtr(p *ptrState) *ptrState {
	return &ptrState{Items: append([]int(nil), p.Items...)}
}

func TestPointerStateAccumulatesAcrossTimestamps(t *testing.T) {
	g := graph.New()
	in := g.AddStream("in", "int")
	_ = g.MarkIngest(in)
	st := state.Typed(&ptrState{}, clonePtr)
	err := g.AddOperator(&operator.Spec{
		Name:          "acc",
		Inputs:        []stream.ID{in},
		AutoWatermark: true,
		NewState:      func() state.Store { return st },
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			s := ctx.State().(*ptrState)
			s.Items = append(s.Items, m.Payload.(int))
		},
		OnWatermark: func(ctx *operator.Context) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{})
	for l := uint64(1); l <= 3; l++ {
		_ = w.Inject(in, message.Data(ts(l), int(l)*100))
		_ = w.Inject(in, message.Watermark(ts(l)))
	}
	w.Quiesce()
	got, _, ok := st.Last()
	if !ok {
		t.Fatal("no committed state")
	}
	items := got.(*ptrState).Items
	if len(items) != 3 || items[0] != 100 || items[2] != 300 {
		t.Fatalf("accumulated state = %v", items)
	}
}

func TestDeadlineMetNoHandler(t *testing.T) {
	clk := deadline.NewManual(time.Unix(0, 0))
	g := graph.New()
	in := g.AddStream("in", "int")
	out := g.AddStream("out", "int")
	_ = g.MarkIngest(in)
	handlerRan := false
	err := g.AddOperator(&operator.Spec{
		Name:          "fast",
		Inputs:        []stream.ID{in},
		Outputs:       []stream.ID{out},
		AutoWatermark: true,
		OnWatermark:   func(ctx *operator.Context) {},
		Deadlines: []operator.TimestampDeadlineSpec{{
			Name:   "resp",
			Output: operator.AllOutputs,
			Value:  deadline.Static(50 * time.Millisecond),
			Policy: deadline.Abort,
			Handler: func(h *operator.HandlerContext) {
				handlerRan = true
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{Clock: clk})
	_ = w.Inject(in, message.Data(ts(1), 1))
	_ = w.Inject(in, message.Watermark(ts(1)))
	w.Quiesce() // watermark forwarded -> DEC satisfied
	clk.Advance(time.Second)
	w.WaitHandlers()
	if handlerRan {
		t.Fatal("handler ran although the deadline was met")
	}
	if s := w.Stats(); s.DeadlineMisses != 0 {
		t.Fatalf("DeadlineMisses = %d", s.DeadlineMisses)
	}
}

func TestDeadlineMissAbortPolicy(t *testing.T) {
	clk := deadline.NewManual(time.Unix(0, 0))
	g := graph.New()
	in := g.AddStream("in", "int")
	outID := g.AddStream("out", "string")
	_ = g.MarkIngest(in)
	st := state.Typed(&ptrState{}, clonePtr)
	release := make(chan struct{})
	started := make(chan struct{})
	err := g.AddOperator(&operator.Spec{
		Name:          "slow",
		Inputs:        []stream.ID{in},
		Outputs:       []stream.ID{outID},
		AutoWatermark: true,
		NewState:      func() state.Store { return st },
		OnWatermark: func(ctx *operator.Context) {
			s := ctx.State().(*ptrState)
			s.Items = append(s.Items, 1) // dirty mutation by the proactive strategy
			close(started)
			<-release // simulate runtime variability
			// Output after abort must be suppressed.
			_ = ctx.Send(0, ctx.Timestamp, "proactive")
		},
		Deadlines: []operator.TimestampDeadlineSpec{{
			Name:   "resp",
			Output: operator.AllOutputs,
			Value:  deadline.Static(10 * time.Millisecond),
			Policy: deadline.Abort,
			Handler: func(h *operator.HandlerContext) {
				// Amend the dirty state and quickly release output (§5.4).
				if h.Dirty != nil {
					d := h.Dirty.(*ptrState)
					d.Items = append(d.Items, 99)
				}
				_ = h.Send(0, h.Miss.Timestamp, "reactive")
				_ = h.SendWatermark(0, h.Miss.Timestamp)
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{Clock: clk})
	out := &sink{}
	_ = w.Subscribe(outID, out.add)

	_ = w.Inject(in, message.Data(ts(1), 1))
	_ = w.Inject(in, message.Watermark(ts(1)))
	<-started
	clk.Advance(20 * time.Millisecond) // expire the deadline
	w.WaitHandlers()
	close(release)
	w.Quiesce()

	d := out.data()
	if len(d) != 1 || d[0].Payload.(string) != "reactive" {
		t.Fatalf("output = %v, want only the handler's reactive output", d)
	}
	if wms := out.watermarks(); len(wms) != 1 || !wms[0].Equal(ts(1)) {
		t.Fatalf("watermarks = %v, want W[1] from the handler", wms)
	}
	got, _, _ := st.Last()
	items := got.(*ptrState).Items
	if len(items) != 2 || items[1] != 99 {
		t.Fatalf("committed state = %v, want handler-amended dirty state", items)
	}
	s := w.Stats()
	if s.DeadlineMisses != 1 || s.HandlerRuns != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeadlineMissContinuePolicy(t *testing.T) {
	clk := deadline.NewManual(time.Unix(0, 0))
	g := graph.New()
	in := g.AddStream("in", "int")
	outID := g.AddStream("out", "string")
	_ = g.MarkIngest(in)
	st := state.Typed(&ptrState{}, clonePtr)
	release := make(chan struct{})
	started := make(chan struct{})
	err := g.AddOperator(&operator.Spec{
		Name:          "slow",
		Inputs:        []stream.ID{in},
		Outputs:       []stream.ID{outID},
		AutoWatermark: true,
		NewState:      func() state.Store { return st },
		OnWatermark: func(ctx *operator.Context) {
			s := ctx.State().(*ptrState)
			close(started)
			<-release
			s.Items = append(s.Items, 42) // higher-accuracy result
			_ = ctx.Send(0, ctx.Timestamp, "proactive")
		},
		Deadlines: []operator.TimestampDeadlineSpec{{
			Name:   "resp",
			Output: operator.AllOutputs,
			Value:  deadline.Static(10 * time.Millisecond),
			Policy: deadline.Continue,
			Handler: func(h *operator.HandlerContext) {
				// Release a low-accuracy result; the proactive strategy
				// keeps running and commits the accurate state (§5.4).
				_ = h.Send(0, h.Miss.Timestamp, "reactive")
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{Clock: clk})
	out := &sink{}
	_ = w.Subscribe(outID, out.add)

	_ = w.Inject(in, message.Data(ts(1), 1))
	_ = w.Inject(in, message.Watermark(ts(1)))
	<-started
	clk.Advance(20 * time.Millisecond)
	w.WaitHandlers()
	close(release)
	w.Quiesce()

	d := out.data()
	if len(d) != 2 {
		t.Fatalf("output = %v, want reactive then proactive", d)
	}
	if d[0].Payload.(string) != "reactive" || d[1].Payload.(string) != "proactive" {
		t.Fatalf("output order = %v, %v", d[0].Payload, d[1].Payload)
	}
	got, _, _ := st.Last()
	items := got.(*ptrState).Items
	if len(items) != 1 || items[0] != 42 {
		t.Fatalf("committed state = %v, want the proactive strategy's", items)
	}
}

func TestFrequencyDeadlineInsertsWatermark(t *testing.T) {
	clk := deadline.NewManual(time.Unix(0, 0))
	g := graph.New()
	objects := g.AddStream("objects", "int")
	lights := g.AddStream("lights", "int")
	plan := g.AddStream("plan", "int")
	_ = g.MarkIngest(objects)
	_ = g.MarkIngest(lights)
	var mu sync.Mutex
	var completed []uint64
	var inserted []uint64
	err := g.AddOperator(&operator.Spec{
		Name:          "planner",
		Inputs:        []stream.ID{objects, lights},
		Outputs:       []stream.ID{plan},
		AutoWatermark: true,
		OnWatermark: func(ctx *operator.Context) {
			mu.Lock()
			completed = append(completed, ctx.Timestamp.L)
			mu.Unlock()
		},
		FrequencyDeadlines: []operator.FrequencyDeadlineSpec{{
			Name:  "lights-gap",
			Input: 1,
			Value: deadline.Static(30 * time.Millisecond),
			OnInsert: func(t timestamp.Timestamp) {
				mu.Lock()
				inserted = append(inserted, t.L)
				mu.Unlock()
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{Clock: clk})

	// Both inputs complete t=0; lights then goes silent.
	_ = w.Inject(objects, message.Watermark(ts(0)))
	_ = w.Inject(lights, message.Watermark(ts(0)))
	w.Quiesce()
	_ = w.Inject(objects, message.Data(ts(1), 5))
	_ = w.Inject(objects, message.Watermark(ts(1)))
	w.Quiesce()
	mu.Lock()
	n := len(completed)
	mu.Unlock()
	if n != 1 { // only t=0
		t.Fatalf("completed %v before gap, want [0]", completed)
	}
	clk.Advance(31 * time.Millisecond) // lights gap expires -> W[1] inserted
	w.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(completed) != 2 || completed[1] != 1 {
		t.Fatalf("completed = %v, want [0 1] after insertion", completed)
	}
	if len(inserted) != 1 || inserted[0] != 1 {
		t.Fatalf("inserted = %v, want [1]", inserted)
	}
}

func TestLateRealWatermarkAfterInsertionIsDropped(t *testing.T) {
	clk := deadline.NewManual(time.Unix(0, 0))
	g := graph.New()
	a := g.AddStream("a", "int")
	b := g.AddStream("b", "int")
	_ = g.MarkIngest(a)
	_ = g.MarkIngest(b)
	var mu sync.Mutex
	var completed []uint64
	err := g.AddOperator(&operator.Spec{
		Name:          "sync",
		Inputs:        []stream.ID{a, b},
		AutoWatermark: true,
		OnWatermark: func(ctx *operator.Context) {
			mu.Lock()
			completed = append(completed, ctx.Timestamp.L)
			mu.Unlock()
		},
		FrequencyDeadlines: []operator.FrequencyDeadlineSpec{{
			Name: "b-gap", Input: 1, Value: deadline.Static(10 * time.Millisecond),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{Clock: clk})
	_ = w.Inject(a, message.Watermark(ts(0)))
	_ = w.Inject(b, message.Watermark(ts(0)))
	_ = w.Inject(a, message.Watermark(ts(1)))
	clk.Advance(11 * time.Millisecond) // inserts W[1] on b
	w.Quiesce()
	// The real W[1] finally arrives late on b; it must be ignored.
	_ = w.Inject(b, message.Watermark(ts(1)))
	w.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	count1 := 0
	for _, l := range completed {
		if l == 1 {
			count1++
		}
	}
	if count1 != 1 {
		t.Fatalf("t=1 completed %d times, want exactly once (completed=%v)", count1, completed)
	}
	if s := w.Stats(); s.DroppedStale == 0 {
		t.Fatal("late watermark was not counted as stale")
	}
}

func TestDynamicDeadlineFeed(t *testing.T) {
	clk := deadline.NewManual(time.Unix(0, 0))
	g := graph.New()
	in := g.AddStream("in", "int")
	dl := g.AddStream("deadlines", "time.Duration")
	outID := g.AddStream("out", "int")
	_ = g.MarkIngest(in)
	_ = g.MarkIngest(dl)
	dyn := deadline.NewDynamic(100 * time.Millisecond)
	if err := g.AddDeadlineFeed(dl, dyn); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var missed []uint64
	block := make(chan struct{})
	err := g.AddOperator(&operator.Spec{
		Name:          "op",
		Inputs:        []stream.ID{in},
		Outputs:       []stream.ID{outID},
		AutoWatermark: true,
		OnWatermark:   func(ctx *operator.Context) { <-block },
		Deadlines: []operator.TimestampDeadlineSpec{{
			Name:   "resp",
			Output: operator.AllOutputs,
			Value:  dyn,
			Policy: deadline.Continue,
			Handler: func(h *operator.HandlerContext) {
				mu.Lock()
				missed = append(missed, h.Miss.Timestamp.L)
				mu.Unlock()
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{Clock: clk})
	// pDP tightens the deadline to 5ms from t=10 onward.
	_ = w.Inject(dl, message.Data(ts(10), 5*time.Millisecond))
	_ = w.Inject(dl, message.Watermark(ts(10)))
	_ = w.Inject(in, message.Data(ts(10), 1))
	_ = w.Inject(in, message.Watermark(ts(10)))
	clk.Advance(6 * time.Millisecond) // > 5ms dynamic, << 100ms default
	w.WaitHandlers()
	close(block)
	w.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(missed) != 1 || missed[0] != 10 {
		t.Fatalf("missed = %v, want [10] under the tightened deadline", missed)
	}
}

func TestContextDeadlineExposure(t *testing.T) {
	clk := deadline.NewManual(time.Unix(0, 0))
	g := graph.New()
	in := g.AddStream("in", "int")
	outID := g.AddStream("out", "int")
	_ = g.MarkIngest(in)
	var gotRel time.Duration
	var gotOK bool
	err := g.AddOperator(&operator.Spec{
		Name:          "op",
		Inputs:        []stream.ID{in},
		Outputs:       []stream.ID{outID},
		AutoWatermark: true,
		OnWatermark: func(ctx *operator.Context) {
			gotRel, _, gotOK = ctx.Deadline()
		},
		Deadlines: []operator.TimestampDeadlineSpec{{
			Name: "resp", Output: operator.AllOutputs,
			Value: deadline.Static(77 * time.Millisecond), Policy: deadline.Abort,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{Clock: clk})
	_ = w.Inject(in, message.Watermark(ts(1)))
	w.Quiesce()
	if !gotOK || gotRel != 77*time.Millisecond {
		t.Fatalf("ctx.Deadline() = (%v, %v)", gotRel, gotOK)
	}
}

func TestStaleDataDropped(t *testing.T) {
	g := graph.New()
	in := g.AddStream("in", "int")
	_ = g.MarkIngest(in)
	var mu sync.Mutex
	var seen []uint64
	err := g.AddOperator(&operator.Spec{
		Name:          "op",
		Inputs:        []stream.ID{in},
		AutoWatermark: true,
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			mu.Lock()
			seen = append(seen, m.Timestamp.L)
			mu.Unlock()
		},
		OnWatermark: func(ctx *operator.Context) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{})
	_ = w.Inject(in, message.Watermark(ts(5)))
	w.Quiesce()
	// The broadcaster itself rejects late data, so emulate a remote path
	// by injecting on a second ingest-like route: the operator-level stale
	// filter is exercised via a message whose time equals the low
	// watermark through a fresh broadcaster. Here we simply verify the
	// broadcaster-level rejection surfaces as an error.
	if err := w.Inject(in, message.Data(ts(3), 1)); err == nil {
		t.Fatal("late data accepted by the stream")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 0 {
		t.Fatalf("stale data reached the callback: %v", seen)
	}
}

func TestValidationRejectsBadGraphs(t *testing.T) {
	g := graph.New()
	s := g.AddStream("s", "int")
	_ = g.MarkIngest(s)
	if err := g.AddOperator(&operator.Spec{Name: "a", Inputs: []stream.ID{s}, Outputs: []stream.ID{s}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("self-loop through one stream must be rejected")
	}

	g2 := graph.New()
	x := g2.AddStream("x", "int")
	if err := g2.AddOperator(&operator.Spec{Name: "r", Inputs: []stream.ID{x}}); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err == nil {
		t.Fatal("reading a writer-less non-ingest stream must be rejected")
	}

	g3 := graph.New()
	y := g3.AddStream("y", "int")
	_ = g3.AddOperator(&operator.Spec{Name: "w1", Outputs: []stream.ID{y}})
	_ = g3.AddOperator(&operator.Spec{Name: "w2", Outputs: []stream.ID{y}})
	if err := g3.Validate(); err == nil {
		t.Fatal("two writers for one stream must be rejected")
	}
}

func TestWorkerStatsCounters(t *testing.T) {
	g := graph.New()
	in := g.AddStream("in", "int")
	_ = g.MarkIngest(in)
	err := g.AddOperator(&operator.Spec{
		Name: "op", Inputs: []stream.ID{in}, AutoWatermark: true,
		OnWatermark: func(ctx *operator.Context) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{})
	for l := uint64(1); l <= 4; l++ {
		_ = w.Inject(in, message.Data(ts(l), 0))
		_ = w.Inject(in, message.Watermark(ts(l)))
	}
	w.Quiesce()
	s := w.Stats()
	if s.Delivered != 8 {
		t.Fatalf("Delivered = %d, want 8", s.Delivered)
	}
	if s.WatermarkBatches != 4 {
		t.Fatalf("WatermarkBatches = %d, want 4", s.WatermarkBatches)
	}
	info, ok := w.Operator("op")
	if !ok || info.CommittedTimes != 4 {
		t.Fatalf("OpInfo = %+v, %v", info, ok)
	}
}

func TestParallelMessagesOperatorThroughRuntime(t *testing.T) {
	// An operator that opts into parallel message callbacks (§6.2) must
	// still observe timestamp-ordered watermark callbacks.
	g := graph.New()
	in := g.AddStream("in", "int")
	_ = g.MarkIngest(in)
	var mu sync.Mutex
	var wmOrder []uint64
	err := g.AddOperator(&operator.Spec{
		Name:          "par",
		Inputs:        []stream.ID{in},
		AutoWatermark: true,
		Mode:          1, // lattice.ModeParallelMessages
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			time.Sleep(200 * time.Microsecond)
		},
		OnWatermark: func(ctx *operator.Context) {
			mu.Lock()
			wmOrder = append(wmOrder, ctx.Timestamp.L)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{Threads: 8})
	for l := uint64(1); l <= 10; l++ {
		for k := 0; k < 4; k++ {
			_ = w.Inject(in, message.Data(ts(l), k))
		}
		_ = w.Inject(in, message.Watermark(ts(l)))
	}
	w.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(wmOrder) != 10 {
		t.Fatalf("watermark callbacks = %d, want 10", len(wmOrder))
	}
	for i := 1; i < len(wmOrder); i++ {
		if wmOrder[i] < wmOrder[i-1] {
			t.Fatalf("watermark order violated under parallel messages: %v", wmOrder)
		}
	}
}

func TestHistoryGCBoundsState(t *testing.T) {
	g := graph.New()
	in := g.AddStream("in", "int")
	_ = g.MarkIngest(in)
	st := state.Typed(counterState{}, state.CloneByValue[counterState]())
	err := g.AddOperator(&operator.Spec{
		Name: "op", Inputs: []stream.ID{in}, AutoWatermark: true,
		NewState:    func() state.Store { return st },
		OnWatermark: func(ctx *operator.Context) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{HistoryDepth: 8})
	for l := uint64(1); l <= 200; l++ {
		_ = w.Inject(in, message.Watermark(ts(l)))
	}
	w.Quiesce()
	if st.Versions() > 24 {
		t.Fatalf("history GC did not bound versions: %d retained", st.Versions())
	}
	info, _ := w.Operator("op")
	if info.CommittedTimes != 200 {
		t.Fatalf("committed %d times", info.CommittedTimes)
	}
}

func TestUrgencyMissCountsLateDispatch(t *testing.T) {
	// A callback that dispatches only after its deadline has already
	// expired is an urgency miss: the run queue, not the computation,
	// blew the budget. The counter feeds congestion-aware placement.
	clk := deadline.NewManual(time.Unix(0, 0))
	g := graph.New()
	in := g.AddStream("in", "int")
	_ = g.MarkIngest(in)
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	err := g.AddOperator(&operator.Spec{
		Name:          "ctrl",
		Inputs:        []stream.ID{in},
		AutoWatermark: true,
		OnWatermark: func(ctx *operator.Context) {
			if ctx.Timestamp.Equal(ts(1)) {
				once.Do(func() { close(started) })
				<-release
			}
		},
		Deadlines: []operator.TimestampDeadlineSpec{{
			Name:    "resp",
			Output:  operator.AllOutputs,
			Value:   deadline.Static(10 * time.Millisecond),
			Policy:  deadline.Continue,
			Handler: func(h *operator.HandlerContext) {},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, g, Options{Clock: clk})
	_ = w.Inject(in, message.Data(ts(1), 1))
	_ = w.Inject(in, message.Watermark(ts(1)))
	<-started
	// t[2] arrives now, so its deadline is 10ms from the manual epoch —
	// but the sequential operator is pinned inside t[1]'s callback.
	_ = w.Inject(in, message.Data(ts(2), 2))
	_ = w.Inject(in, message.Watermark(ts(2)))
	clk.Advance(time.Second) // t[2]'s deadline expires while it queues
	w.WaitHandlers()
	close(release)
	w.Quiesce()

	s := w.Stats()
	if s.UrgencyMisses == 0 {
		t.Fatalf("no urgency miss recorded for a post-deadline dispatch: %+v", s)
	}
	if c := w.Congestion(); c.UrgencyMisses != s.UrgencyMisses {
		t.Fatalf("Congestion().UrgencyMisses = %d, Stats = %d", c.UrgencyMisses, s.UrgencyMisses)
	}
}

// TestTrackFrontierReportsSubscriptionOnlyStreams: a worker that runs no
// operator on a stream (an extraction point) reports no frontier for it —
// until TrackFrontier taps the broadcaster, after which delivered
// watermarks advance the reported frontier exactly like an operator input
// would.
func TestTrackFrontierReportsSubscriptionOnlyStreams(t *testing.T) {
	g := graph.New()
	s := g.AddStream("s", "int")
	if err := g.MarkIngest(s); err != nil {
		t.Fatal(err)
	}
	w, err := New(g, Options{Name: "ext", Owns: func(string) bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	if f := w.Frontiers(); len(f) != 0 {
		t.Fatalf("frontiers before tracking = %v, want none", f)
	}
	if err := w.TrackFrontier(s); err != nil {
		t.Fatal(err)
	}
	if err := w.TrackFrontier(s); err != nil { // idempotent
		t.Fatal(err)
	}
	if f := w.Frontiers(); f[s] != 0 || len(f) != 1 {
		t.Fatalf("frontiers after tracking = %v, want {%v: 0}", f, s)
	}
	if err := w.Inject(s, message.Data(ts(3), 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Inject(s, message.Watermark(ts(3))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Frontiers()[s] != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("frontier = %d, want 3", w.Frontiers()[s])
		}
		time.Sleep(time.Millisecond)
	}
}
