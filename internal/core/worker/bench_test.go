package worker

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// BenchmarkChainThroughput measures the full runtime's per-timestamp cost
// through a three-operator chain (inject -> 3x forward -> commit), i.e. the
// scheduling + watermark + state machinery without user computation.
func BenchmarkChainThroughput(b *testing.B) {
	g := graph.New()
	in := g.AddStream("in", "int")
	_ = g.MarkIngest(in)
	prev := in
	for i := 0; i < 3; i++ {
		out := g.AddStream("s", "int")
		idx := i
		_ = idx
		err := g.AddOperator(&operator.Spec{
			Name:          string(rune('a' + i)),
			Inputs:        []stream.ID{prev},
			Outputs:       []stream.ID{out},
			AutoWatermark: true,
			OnData: func(ctx *operator.Context, _ int, m message.Message) {
				_ = ctx.Send(0, m.Timestamp, m.Payload)
			},
			OnWatermark: func(ctx *operator.Context) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		prev = out
	}
	w, err := New(g, Options{Local: true, Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := timestamp.New(uint64(i + 1))
		_ = w.Inject(in, message.Data(ts, i))
		_ = w.Inject(in, message.Watermark(ts))
	}
	w.Quiesce()
}
