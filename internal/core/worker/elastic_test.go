package worker

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// TestExtendAndRelease: a worker built over one graph is extended with a
// second (tenant) graph at runtime — its streams become injectable, its
// operators runnable — and Release freezes operators and returns their
// checkpoints for handoff.
func TestExtendAndRelease(t *testing.T) {
	base := graph.New()
	bin := base.AddStream("b-in", "int")
	if err := base.MarkIngest(bin); err != nil {
		t.Fatal(err)
	}
	if err := base.AddOperator(&operator.Spec{
		Name: "b-op", Inputs: []stream.ID{bin}, AutoWatermark: true,
	}); err != nil {
		t.Fatal(err)
	}
	w := mustWorker(t, base, Options{Name: "w"})
	if got := w.LocalOps(); len(got) != 1 || got[0] != "b-op" {
		t.Fatalf("LocalOps = %v, want [b-op]", got)
	}

	// The tenant graph: t-in -> t-count (stateful) with a recorded sum.
	sub := graph.New()
	tin := sub.AddStream("t-in", "int")
	if err := sub.MarkIngest(tin); err != nil {
		t.Fatal(err)
	}
	type sumState struct{ Sum int }
	state.RegisterState(&sumState{})
	if err := sub.AddOperator(&operator.Spec{
		Name: "t-count", Inputs: []stream.ID{tin}, AutoWatermark: true,
		NewState: func() state.Store {
			return state.NewVersioned(&sumState{}, func(v any) any {
				c := *v.(*sumState)
				return &c
			})
		},
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			ctx.State().(*sumState).Sum += m.Payload.(int)
		},
	}); err != nil {
		t.Fatal(err)
	}

	// Before Extend the tenant stream is unknown.
	if err := w.Inject(tin, message.Data(ts(1), 1)); err == nil {
		t.Fatal("inject on unknown stream succeeded")
	}
	if err := w.Extend(sub); err != nil {
		t.Fatal(err)
	}
	// Re-extending the same part is rejected by the composite, not fatal.
	if err := w.Extend(sub); err == nil {
		t.Fatal("double Extend succeeded")
	}
	if _, ok := w.View().Writer(tin); ok {
		t.Fatal("ingest stream has a writer")
	}

	// Adopt the tenant operator (as a reschedule would) and run data
	// through it.
	if err := w.Adopt("t-count", nil, ^uint64(0), nil); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := w.Inject(tin, message.Data(ts(i), 2)); err != nil {
			t.Fatal(err)
		}
		if err := w.Inject(tin, message.Watermark(ts(i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()

	// Release freezes the named operator and returns its checkpoint.
	cps := w.Release([]string{"t-count"})
	cp, ok := cps["t-count"]
	if !ok || !cp.HasState {
		t.Fatalf("release returned no checkpoint for t-count: %+v", cps)
	}
	if cp.L != 3 {
		t.Fatalf("released checkpoint at watermark %d, want 3", cp.L)
	}
	if w.Has("t-count") {
		t.Fatal("released operator still present")
	}
	if got := w.LocalOps(); len(got) != 1 || got[0] != "b-op" {
		t.Fatalf("LocalOps after release = %v, want [b-op]", got)
	}
	// Messages to a released operator are dropped, not crashed on.
	if err := w.Inject(tin, message.Data(ts(4), 2)); err != nil {
		t.Fatal(err)
	}

	// Release(nil) freezes everything that remains; b-op is stateless, so
	// it is removed but contributes no checkpoint.
	rest := w.Release(nil)
	if len(rest) != 0 {
		t.Fatalf("stateless release returned checkpoints: %+v", rest)
	}
	if got := w.LocalOps(); len(got) != 0 {
		t.Fatalf("LocalOps after full release = %v, want empty", got)
	}
}
