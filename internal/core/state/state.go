// Package state implements ERDOS' system-managed operator state (§5.3-§5.4
// of the paper).
//
// By assuming control over operator state decoupled from the computation,
// the runtime can hand independent views to proactive strategies, deadline
// exception handlers (DEH) and speculatively-executed implementation
// variants without requiring operators to synchronize, while guaranteeing:
//
//   - Transactional semantics: a callback executing timestamp t mutates a
//     private working view; the mutations become visible only when the view
//     is committed (normally upon release of the watermark Wt). An aborted
//     view is discarded without effect.
//
//   - Time-versioning: a committed version is retained per timestamp, so a
//     DEH for t can read the committed state of any t' < t while proactive
//     strategies continue for t” >= t in parallel.
//
// The default Versioned implementation snapshots full state per commit. The
// LogState implementation in logstate.go demonstrates the custom-state
// interface (commit as an operation log, CRDT-style) from §5.4.
package state

import (
	"sync"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// Store is the type-erased interface the worker runtime uses to manage an
// operator's state. Implementations must be safe for concurrent use.
type Store interface {
	// View returns a private mutable working view for computing timestamp
	// t, derived from the committed state at the greatest t' < t.
	View(t timestamp.Timestamp) any
	// Commit atomically publishes view as the committed state for t.
	// Commits may arrive out of order; Committed always answers from the
	// version ordering, not arrival order.
	Commit(t timestamp.Timestamp, view any)
	// Committed returns a read-only snapshot of the committed state at the
	// greatest timestamp t' <= t, and whether any such version exists.
	Committed(t timestamp.Timestamp) (any, bool)
	// Last returns the committed state with the greatest timestamp.
	Last() (any, timestamp.Timestamp, bool)
	// Discard abandons a working view without publishing it (Abort policy).
	Discard(t timestamp.Timestamp, view any)
	// GC drops committed versions strictly below t, keeping at least the
	// most recent one at or below t so Committed(t) still answers.
	GC(t timestamp.Timestamp)
	// Versions returns the number of retained committed versions.
	Versions() int
}

// version is one committed snapshot.
type version struct {
	ts    timestamp.Timestamp
	value any
}

// Versioned is the default Store: it keeps a full snapshot of the state per
// committed timestamp. Snapshots are produced by the clone function supplied
// at construction; for plain-old-data states CloneByValue suffices.
type Versioned struct {
	mu       sync.Mutex
	initial  any
	clone    func(any) any
	versions []version // sorted ascending by ts
}

// NewVersioned returns a Store whose initial committed state (conceptually
// at the minimum timestamp) is initial. clone must return an independent
// deep copy of its argument; it is invoked for every View and Committed.
func NewVersioned(initial any, clone func(any) any) *Versioned {
	if clone == nil {
		panic("state: nil clone function")
	}
	return &Versioned{initial: initial, clone: clone}
}

// Typed is a typed convenience constructor over NewVersioned.
func Typed[S any](initial S, clone func(S) S) *Versioned {
	return NewVersioned(initial, func(v any) any { return clone(v.(S)) })
}

// CloneByValue returns a clone function that copies by assignment. It is
// only correct for states without reference-typed fields (maps, slices,
// pointers) or for immutable reference targets.
func CloneByValue[S any]() func(S) S { return func(s S) S { return s } }

// View implements Store. The view is derived from the committed state at
// the greatest t' strictly below t, so parallel executions for different
// timestamps never observe each other's uncommitted effects.
func (v *Versioned) View(t timestamp.Timestamp) any {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.clone(v.lookupLocked(t, true))
}

// Commit implements Store.
func (v *Versioned) Commit(t timestamp.Timestamp, view any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	// Insert keeping ascending timestamp order; replace on equal timestamp
	// (a re-commit for the same t, e.g. a DEH amending a dirty view, wins).
	i := len(v.versions)
	for i > 0 && t.Less(v.versions[i-1].ts) {
		i--
	}
	if i > 0 && v.versions[i-1].ts.Equal(t) {
		v.versions[i-1].value = view
		return
	}
	v.versions = append(v.versions, version{})
	copy(v.versions[i+1:], v.versions[i:])
	v.versions[i] = version{ts: t, value: view}
}

// Committed implements Store.
func (v *Versioned) Committed(t timestamp.Timestamp) (any, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := len(v.versions) - 1; i >= 0; i-- {
		if v.versions[i].ts.LessEq(t) {
			return v.clone(v.versions[i].value), true
		}
	}
	return v.clone(v.initial), false
}

// Last implements Store.
func (v *Versioned) Last() (any, timestamp.Timestamp, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.versions) == 0 {
		return v.clone(v.initial), timestamp.Bottom(), false
	}
	last := v.versions[len(v.versions)-1]
	return v.clone(last.value), last.ts, true
}

// Discard implements Store. The default implementation has nothing to undo:
// views are private clones, so dropping the reference suffices.
func (v *Versioned) Discard(timestamp.Timestamp, any) {}

// GC implements Store.
func (v *Versioned) GC(t timestamp.Timestamp) {
	v.mu.Lock()
	defer v.mu.Unlock()
	// Find the last version at or below t; keep it and everything after.
	keepFrom := 0
	for i := len(v.versions) - 1; i >= 0; i-- {
		if v.versions[i].ts.LessEq(t) {
			keepFrom = i
			break
		}
	}
	if keepFrom > 0 {
		v.versions = append([]version(nil), v.versions[keepFrom:]...)
	}
}

// Versions implements Store.
func (v *Versioned) Versions() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.versions)
}

// ListVersions implements VersionLister: it returns every retained committed
// version in ascending timestamp order. Values are independent clones, so
// callers (checkpoint encoding in particular) can read them while the live
// store keeps committing.
func (v *Versioned) ListVersions() []TimedValue {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]TimedValue, len(v.versions))
	for i, ver := range v.versions {
		out[i] = TimedValue{TS: ver.ts, Value: v.clone(ver.value)}
	}
	return out
}

// lookupLocked returns the committed value at the greatest t' < t (strict)
// or t' <= t (if !strict); falls back to the initial state.
func (v *Versioned) lookupLocked(t timestamp.Timestamp, strict bool) any {
	for i := len(v.versions) - 1; i >= 0; i-- {
		ts := v.versions[i].ts
		if (strict && ts.Less(t)) || (!strict && ts.LessEq(t)) {
			return v.versions[i].value
		}
	}
	return v.initial
}

// None is a Store for stateless operators: views are always nil and commits
// are recorded only as timestamps so Committed/Last still answer.
type None struct {
	mu   sync.Mutex
	last timestamp.Timestamp
	seen bool
}

// NewNone returns a stateless Store.
func NewNone() *None { return &None{} }

// View implements Store.
func (n *None) View(timestamp.Timestamp) any { return nil }

// Commit implements Store.
func (n *None) Commit(t timestamp.Timestamp, _ any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.seen || n.last.Less(t) {
		n.last, n.seen = t, true
	}
}

// Committed implements Store.
func (n *None) Committed(timestamp.Timestamp) (any, bool) { return nil, false }

// Last implements Store.
func (n *None) Last() (any, timestamp.Timestamp, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return nil, n.last, n.seen
}

// Discard implements Store.
func (n *None) Discard(timestamp.Timestamp, any) {}

// GC implements Store.
func (n *None) GC(timestamp.Timestamp) {}

// Versions implements Store.
func (n *None) Versions() int { return 0 }
