// Checkpoint/restore for time-versioned stores: the failover path ships the
// recent committed versions of each operator's state to the leader as opaque
// gob blobs, and a surviving worker that adopts the operator commits one of
// them back at its logical time — execution resumes from the last consistent
// watermark instead of from scratch (§3.4, §5.3).
//
// Checkpoints are multi-version because the newest commit is not always a
// safe restore point: an output the failed worker produced after a consumer
// last caught up may have been lost in flight, in which case the adopter
// must restart far enough back to regenerate it. The leader picks the cut
// (the minimum surviving-consumer frontier); RestoreAt honors it with the
// newest retained version at or below it.
package state

import (
	"bytes"
	"encoding/gob"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// MaxCheckpointVersions bounds how many committed versions one checkpoint
// carries. The needed rewind is the consumer-frontier staleness (roughly one
// heartbeat of traffic), so a short tail suffices. Exported so the cluster
// control plane can apply the same bound when it splices heartbeat-shipped
// checkpoint deltas onto its retained snapshots.
const MaxCheckpointVersions = 16

// Version is one committed state version inside a Checkpoint.
type Version struct {
	// L is the logical time of the commit.
	L uint64
	// State is the gob-encoded committed value.
	State []byte
}

// Checkpoint is a portable snapshot of one operator store. Only logical
// coordinates are carried: the runtime checkpoints at watermark commits,
// which happen at plain logical times.
type Checkpoint struct {
	// L is the logical time of the newest committed version.
	L uint64
	// HasState reports whether State holds an encoded value. It is false
	// for stateless stores and for state types gob cannot encode (e.g.
	// only unexported fields) — recovery then degrades to restarting the
	// operator from its initial state at watermark L, still fenced by the
	// restored watermark so no input is double-applied.
	HasState bool
	// State is the gob-encoded newest committed value when HasState.
	State []byte
	// Older holds earlier committed versions in ascending logical-time
	// order (all strictly below L), enabling restore at a consistent cut
	// older than the newest commit.
	Older []Version
}

// snapEnvelope wraps the committed value so gob records its concrete type.
// State types crossing a checkpoint must be registered with RegisterState.
type snapEnvelope struct {
	Value any
}

// RegisterState registers a concrete operator-state type for
// checkpoint encoding, like gob.Register.
func RegisterState(v any) { gob.Register(v) }

// TimedValue is one committed version exposed by a VersionLister.
type TimedValue struct {
	TS    timestamp.Timestamp
	Value any
}

// VersionLister is an optional Store extension: stores that retain their
// committed history expose it (newest last, values independently cloned)
// so Snapshot can build multi-version checkpoints.
type VersionLister interface {
	ListVersions() []TimedValue
}

func encodeValue(v any) ([]byte, bool) {
	if v == nil {
		return nil, false
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snapEnvelope{Value: v}); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// Snapshot captures s's recent committed versions, newest in L/State and a
// bounded tail of older ones in Older. ok is false when nothing has been
// committed yet (there is no watermark to restore from, so the operator
// would restart fresh anyway). Encoding failures degrade to a
// watermark-only checkpoint rather than failing recovery.
func Snapshot(s Store) (cp Checkpoint, ok bool) {
	v, ts, committed := s.Last()
	if !committed {
		return Checkpoint{}, false
	}
	cp.L = ts.L
	if v != nil {
		if b, encOK := encodeValue(v); encOK {
			cp.HasState, cp.State = true, b
		}
	}
	lister, isLister := s.(VersionLister)
	if !cp.HasState || !isLister {
		return cp, true
	}
	vs := lister.ListVersions()
	// Walk the tail below the newest commit, newest-first, then reverse
	// into ascending order.
	var older []Version
	for i := len(vs) - 1; i >= 0 && len(older) < MaxCheckpointVersions-1; i-- {
		if !vs[i].TS.Less(ts) {
			continue
		}
		if b, encOK := encodeValue(vs[i].Value); encOK {
			older = append(older, Version{L: vs[i].TS.L, State: b})
		}
	}
	for i, j := 0, len(older)-1; i < j; i, j = i+1, j-1 {
		older[i], older[j] = older[j], older[i]
	}
	cp.Older = older
	return cp, true
}

// Restore commits cp's newest value into s at logical time cp.L, so
// Committed and View answer exactly as they did on the failed worker at
// that watermark. Watermark-only checkpoints (HasState false) leave the
// store untouched.
func Restore(s Store, cp Checkpoint) error {
	_, err := RestoreAt(s, cp, cp.L)
	return err
}

// allVersions returns the checkpoint's retained versions in ascending
// logical-time order, the newest (L/State) last.
func (cp Checkpoint) allVersions() []Version {
	if !cp.HasState {
		return cp.Older
	}
	return append(append([]Version(nil), cp.Older...), Version{L: cp.L, State: cp.State})
}

// pickVersion selects the newest retained version at or below atL, falling
// back to the oldest available when nothing is old enough.
func pickVersion(versions []Version, atL uint64) int {
	pick := 0
	for i, v := range versions {
		if v.L <= atL {
			pick = i
		}
	}
	return pick
}

// PickL returns the logical time RestoreAt would fence at for the given
// cut, without decoding anything. The leader uses it to predict an orphaned
// consumer's actual restore point when computing its (equally orphaned)
// producers' cuts: the producer must regenerate everything after what the
// consumer really restores, which may be older than the cut when the
// checkpoint has no version exactly at it.
func (cp Checkpoint) PickL(atL uint64) uint64 {
	versions := cp.allVersions()
	if len(versions) == 0 {
		if atL < cp.L {
			return atL
		}
		return cp.L
	}
	return versions[pickVersion(versions, atL)].L
}

// RestoreAt commits the newest retained version at or below atL into s and
// returns the logical time actually restored — the watermark the adopting
// runtime must fence inputs at, so everything after it is re-processed and
// re-emitted. When the checkpoint retains nothing old enough, the oldest
// available version is used (best effort: the un-regenerable prefix
// surfaces downstream as deadline misses, not silent corruption). For
// watermark-only checkpoints the fence is min(cp.L, atL) and the store is
// left untouched.
func RestoreAt(s Store, cp Checkpoint, atL uint64) (uint64, error) {
	versions := cp.allVersions()
	if len(versions) == 0 {
		return cp.PickL(atL), nil
	}
	pick := pickVersion(versions, atL)
	var env snapEnvelope
	if err := gob.NewDecoder(bytes.NewReader(versions[pick].State)).Decode(&env); err != nil {
		return 0, err
	}
	s.Commit(timestamp.New(versions[pick].L), env.Value)
	return versions[pick].L, nil
}
