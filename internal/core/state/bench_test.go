package state

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// BenchmarkViewCommit measures the per-timestamp transactional cycle on the
// default snapshot store with a small value state.
func BenchmarkViewCommit(b *testing.B) {
	type s struct{ N int }
	st := Typed(s{}, CloneByValue[s]())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := timestamp.New(uint64(i + 1))
		v := st.View(ts).(s)
		v.N++
		st.Commit(ts, v)
		if i%64 == 0 {
			st.GC(timestamp.New(uint64(i)))
		}
	}
}

func BenchmarkCommittedLookup(b *testing.B) {
	type s struct{ N int }
	st := Typed(s{}, CloneByValue[s]())
	for l := uint64(1); l <= 64; l++ {
		st.Commit(timestamp.New(l), s{N: int(l)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = st.Committed(timestamp.New(32))
	}
}
