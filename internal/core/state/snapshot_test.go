package state

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

type snapCounter struct{ N int }

func init() { RegisterState(&snapCounter{}) }

func newCounterStore() *Versioned {
	return NewVersioned(&snapCounter{}, func(v any) any {
		c := *v.(*snapCounter)
		return &c
	})
}

func commitN(s Store, ls ...uint64) {
	for _, l := range ls {
		s.Commit(timestamp.New(l), &snapCounter{N: int(l)})
	}
}

// TestSnapshotMultiVersion: a checkpoint carries the newest committed
// version plus the retained tail in ascending order, all strictly below the
// newest watermark.
func TestSnapshotMultiVersion(t *testing.T) {
	s := newCounterStore()
	commitN(s, 3, 5, 8)
	cp, ok := Snapshot(s)
	if !ok || !cp.HasState || cp.L != 8 {
		t.Fatalf("snapshot = %+v ok=%v, want newest at 8 with state", cp, ok)
	}
	if len(cp.Older) != 2 || cp.Older[0].L != 3 || cp.Older[1].L != 5 {
		t.Fatalf("older versions = %+v, want [3 5]", cp.Older)
	}
}

// TestSnapshotBoundsVersions: the tail is capped at MaxCheckpointVersions-1
// newest-first, so unbounded history cannot bloat heartbeats.
func TestSnapshotBoundsVersions(t *testing.T) {
	s := newCounterStore()
	for l := uint64(1); l <= 40; l++ {
		commitN(s, l)
	}
	cp, _ := Snapshot(s)
	if len(cp.Older) != MaxCheckpointVersions-1 {
		t.Fatalf("retained %d older versions, want %d", len(cp.Older), MaxCheckpointVersions-1)
	}
	if first := cp.Older[0].L; first != 40-uint64(MaxCheckpointVersions-1) {
		t.Fatalf("oldest retained version at %d, want %d", first, 40-uint64(MaxCheckpointVersions-1))
	}
}

// TestRestoreAtPicksConsistentCut: restore lands on the newest version at
// or below the cut, the store answers from it, and the returned fence is
// the restored watermark — not the cut itself when no version sits exactly
// on it.
func TestRestoreAtPicksConsistentCut(t *testing.T) {
	src := newCounterStore()
	commitN(src, 3, 5, 8)
	cp, _ := Snapshot(src)

	for _, tc := range []struct {
		atL, wantL uint64
		wantN      int
	}{
		{8, 8, 8},   // unconstrained: newest
		{6, 5, 5},   // cut between versions: newest at or below
		{5, 5, 5},   // cut exactly on a version
		{1, 3, 3},   // nothing old enough: oldest retained, best effort
		{100, 8, 8}, // cut beyond newest: newest
	} {
		dst := newCounterStore()
		gotL, err := RestoreAt(dst, cp, tc.atL)
		if err != nil {
			t.Fatal(err)
		}
		if gotL != tc.wantL {
			t.Fatalf("RestoreAt(%d) fence = %d, want %d", tc.atL, gotL, tc.wantL)
		}
		if pick := cp.PickL(tc.atL); pick != gotL {
			t.Fatalf("PickL(%d) = %d disagrees with RestoreAt fence %d", tc.atL, pick, gotL)
		}
		v, ts, ok := dst.Last()
		if !ok || ts.L != tc.wantL || v.(*snapCounter).N != tc.wantN {
			t.Fatalf("after RestoreAt(%d): last = %+v at %d ok=%v, want N=%d at %d",
				tc.atL, v, ts.L, ok, tc.wantN, tc.wantL)
		}
	}
}

// TestSnapshotRoundTrip: Restore reproduces the committed value at the
// checkpoint watermark in a fresh store.
func TestSnapshotRoundTrip(t *testing.T) {
	src := newCounterStore()
	commitN(src, 4, 7)
	cp, _ := Snapshot(src)

	dst := newCounterStore()
	if err := Restore(dst, cp); err != nil {
		t.Fatal(err)
	}
	v, ok := dst.Committed(timestamp.New(7))
	if !ok || v.(*snapCounter).N != 7 {
		t.Fatalf("restored committed(7) = %+v ok=%v, want N=7", v, ok)
	}
}

// TestSnapshotEncodeFailureDegrades: an unencodable state degrades to a
// watermark-only checkpoint instead of failing; RestoreAt then fences at
// min(cp.L, cut) without touching the store.
func TestSnapshotEncodeFailureDegrades(t *testing.T) {
	bad := NewVersioned(nil, func(v any) any { return v })
	// A function value is not gob-encodable.
	bad.Commit(timestamp.New(9), func() {})
	cp, ok := Snapshot(bad)
	if !ok || cp.HasState || cp.L != 9 || len(cp.Older) != 0 {
		t.Fatalf("degraded snapshot = %+v ok=%v, want watermark-only at 9", cp, ok)
	}
	dst := newCounterStore()
	if l, err := RestoreAt(dst, cp, 6); err != nil || l != 6 {
		t.Fatalf("RestoreAt on watermark-only = (%d, %v), want fence 6", l, err)
	}
	if l, err := RestoreAt(dst, cp, 12); err != nil || l != 9 {
		t.Fatalf("RestoreAt on watermark-only = (%d, %v), want fence 9", l, err)
	}
	if _, _, committed := dst.Last(); committed {
		t.Fatal("watermark-only restore committed state into the store")
	}
}

// TestNoneStoreSnapshot: stateless stores checkpoint as watermark-only.
func TestNoneStoreSnapshot(t *testing.T) {
	n := NewNone()
	n.Commit(timestamp.New(5), nil)
	cp, ok := Snapshot(n)
	if !ok || cp.HasState || cp.L != 5 {
		t.Fatalf("stateless snapshot = %+v ok=%v, want watermark-only at 5", cp, ok)
	}
}
