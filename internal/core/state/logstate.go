package state

import (
	"sync"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// LogState is a custom Store (§5.4) that logs operations instead of
// snapshotting full state per timestamp, in the style of operation-based
// CRDTs. It suits states that grow monotonically — e.g. a Planner that
// appends waypoints — where snapshotting every version would be wasteful.
//
// Callbacks receive a *LogView; they mutate the materialized Value through
// Record, which both applies the operation and logs it. Commit appends the
// recorded operations at the view's timestamp; views are materialized by
// replaying the log.
type LogState struct {
	newBase func() any
	apply   func(st, op any)

	mu      sync.Mutex
	entries []logEntry // ascending by ts
}

type logEntry struct {
	ts  timestamp.Timestamp
	ops []any
}

// LogView is the working view handed to a callback executing one timestamp.
type LogView struct {
	// Value is the state materialized from all operations committed for
	// timestamps strictly below the view's timestamp.
	Value any
	apply func(st, op any)
	ops   []any
}

// Record applies op to the materialized value and logs it for commit.
func (v *LogView) Record(op any) {
	v.apply(v.Value, op)
	v.ops = append(v.ops, op)
}

// Ops returns the operations recorded so far (the "dirty state" a DEH
// receives under the Abort policy).
func (v *LogView) Ops() []any { return v.ops }

// NewLog returns a LogState. newBase must return a fresh, independent base
// state; apply must apply one logged operation to a materialized state.
func NewLog(newBase func() any, apply func(st, op any)) *LogState {
	if newBase == nil || apply == nil {
		panic("state: NewLog requires newBase and apply")
	}
	return &LogState{newBase: newBase, apply: apply}
}

// View implements Store.
func (l *LogState) View(t timestamp.Timestamp) any {
	return &LogView{Value: l.materialize(t, true), apply: l.apply}
}

// Commit implements Store. The view must be a *LogView produced by View.
func (l *LogState) Commit(t timestamp.Timestamp, view any) {
	lv, ok := view.(*LogView)
	if !ok {
		panic("state: LogState.Commit requires a *LogView")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i := len(l.entries)
	for i > 0 && t.Less(l.entries[i-1].ts) {
		i--
	}
	if i > 0 && l.entries[i-1].ts.Equal(t) {
		l.entries[i-1].ops = append([]any(nil), lv.ops...)
		return
	}
	l.entries = append(l.entries, logEntry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = logEntry{ts: t, ops: append([]any(nil), lv.ops...)}
}

// Committed implements Store: it materializes the state from operations
// committed at timestamps <= t.
func (l *LogState) Committed(t timestamp.Timestamp) (any, bool) {
	l.mu.Lock()
	n := 0
	for _, e := range l.entries {
		if e.ts.LessEq(t) {
			n++
		}
	}
	l.mu.Unlock()
	return l.materialize(t, false), n > 0
}

// Last implements Store.
func (l *LogState) Last() (any, timestamp.Timestamp, bool) {
	l.mu.Lock()
	if len(l.entries) == 0 {
		l.mu.Unlock()
		return l.materialize(timestamp.Bottom(), false), timestamp.Bottom(), false
	}
	last := l.entries[len(l.entries)-1].ts
	l.mu.Unlock()
	return l.materialize(last, false), last, true
}

// Discard implements Store: uncommitted operations live only in the view.
func (l *LogState) Discard(timestamp.Timestamp, any) {}

// GC implements Store: it folds entries strictly below t into a single
// consolidated entry so replay cost stays bounded.
func (l *LogState) GC(t timestamp.Timestamp) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var folded []any
	var foldTS timestamp.Timestamp
	rest := l.entries[:0]
	n := 0
	for _, e := range l.entries {
		if e.ts.Less(t) {
			folded = append(folded, e.ops...)
			foldTS = e.ts
			n++
		}
	}
	if n <= 1 {
		return
	}
	rest = append(rest, logEntry{ts: foldTS, ops: folded})
	for _, e := range l.entries {
		if !e.ts.Less(t) {
			rest = append(rest, e)
		}
	}
	l.entries = append([]logEntry(nil), rest...)
}

// Versions implements Store.
func (l *LogState) Versions() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// materialize replays the committed log up to t (strictly below when strict)
// onto a fresh base.
func (l *LogState) materialize(t timestamp.Timestamp, strict bool) any {
	st := l.newBase()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		if (strict && !e.ts.Less(t)) || (!strict && !e.ts.LessEq(t)) {
			break
		}
		for _, op := range e.ops {
			l.apply(st, op)
		}
	}
	return st
}
