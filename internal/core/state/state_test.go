package state

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

type counter struct{ N int }

func cloneCounter(c counter) counter { return c }

func ts(l uint64) timestamp.Timestamp { return timestamp.New(l) }

func TestVersionedViewIsolation(t *testing.T) {
	s := Typed(counter{N: 0}, cloneCounter)
	v1 := s.View(ts(1)).(counter)
	v1.N = 10
	// Mutating a view must not be visible to other views before commit.
	v2 := s.View(ts(1)).(counter)
	if v2.N != 0 {
		t.Fatalf("uncommitted mutation leaked: %+v", v2)
	}
	s.Commit(ts(1), v1)
	if got, ok := s.Committed(ts(1)); !ok || got.(counter).N != 10 {
		t.Fatalf("Committed(1) = %v, %v", got, ok)
	}
}

func TestVersionedStrictViewSemantics(t *testing.T) {
	s := Typed(counter{}, cloneCounter)
	s.Commit(ts(1), counter{N: 1})
	s.Commit(ts(2), counter{N: 2})
	// The view for t derives from the committed state at t' < t, so the
	// view for 2 sees version 1, not version 2 (§5.4).
	if v := s.View(ts(2)).(counter); v.N != 1 {
		t.Fatalf("View(2) = %+v, want N=1", v)
	}
	if v := s.View(ts(3)).(counter); v.N != 2 {
		t.Fatalf("View(3) = %+v, want N=2", v)
	}
	if v := s.View(ts(1)).(counter); v.N != 0 {
		t.Fatalf("View(1) = %+v, want initial", v)
	}
}

func TestVersionedOutOfOrderCommits(t *testing.T) {
	s := Typed(counter{}, cloneCounter)
	s.Commit(ts(5), counter{N: 5})
	s.Commit(ts(3), counter{N: 3})
	s.Commit(ts(4), counter{N: 4})
	for l := uint64(3); l <= 5; l++ {
		got, ok := s.Committed(ts(l))
		if !ok || got.(counter).N != int(l) {
			t.Fatalf("Committed(%d) = %v, %v", l, got, ok)
		}
	}
	if _, ok := s.Committed(ts(2)); ok {
		t.Fatal("Committed(2) should report no version")
	}
}

func TestVersionedRecommitReplaces(t *testing.T) {
	s := Typed(counter{}, cloneCounter)
	s.Commit(ts(1), counter{N: 1})
	s.Commit(ts(1), counter{N: 99}) // DEH amends the dirty state for t
	got, _ := s.Committed(ts(1))
	if got.(counter).N != 99 {
		t.Fatalf("recommit did not replace: %+v", got)
	}
	if s.Versions() != 1 {
		t.Fatalf("Versions = %d, want 1", s.Versions())
	}
}

func TestVersionedLast(t *testing.T) {
	s := Typed(counter{}, cloneCounter)
	if _, _, ok := s.Last(); ok {
		t.Fatal("Last on empty store should report !ok")
	}
	s.Commit(ts(2), counter{N: 2})
	s.Commit(ts(7), counter{N: 7})
	v, at, ok := s.Last()
	if !ok || v.(counter).N != 7 || !at.Equal(ts(7)) {
		t.Fatalf("Last = %v @ %v, %v", v, at, ok)
	}
}

func TestVersionedGC(t *testing.T) {
	s := Typed(counter{}, cloneCounter)
	for l := uint64(1); l <= 10; l++ {
		s.Commit(ts(l), counter{N: int(l)})
	}
	s.GC(ts(8))
	if s.Versions() != 3 { // 8, 9, 10
		t.Fatalf("Versions after GC = %d, want 3", s.Versions())
	}
	// Committed(8) must still answer after GC.
	got, ok := s.Committed(ts(8))
	if !ok || got.(counter).N != 8 {
		t.Fatalf("Committed(8) after GC = %v, %v", got, ok)
	}
}

func TestVersionedCloneDeepCopies(t *testing.T) {
	type sliceState struct{ Items []int }
	s := Typed(sliceState{}, func(v sliceState) sliceState {
		return sliceState{Items: append([]int(nil), v.Items...)}
	})
	v := s.View(ts(1)).(sliceState)
	v.Items = append(v.Items, 1, 2)
	s.Commit(ts(1), v)
	w := s.View(ts(2)).(sliceState)
	w.Items[0] = 99
	got, _ := s.Committed(ts(1))
	if got.(sliceState).Items[0] != 1 {
		t.Fatal("mutation through a later view corrupted a committed version")
	}
}

func TestNoneStore(t *testing.T) {
	s := NewNone()
	if v := s.View(ts(1)); v != nil {
		t.Fatalf("None.View = %v", v)
	}
	s.Commit(ts(3), nil)
	s.Commit(ts(1), nil) // lower timestamp must not regress Last
	_, at, ok := s.Last()
	if !ok || !at.Equal(ts(3)) {
		t.Fatalf("None.Last = %v, %v", at, ok)
	}
}

func TestConcurrentViewsAndCommits(t *testing.T) {
	s := Typed(counter{}, cloneCounter)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l := uint64(g*200 + i + 1)
				v := s.View(ts(l)).(counter)
				v.N = int(l)
				s.Commit(ts(l), v)
				if _, ok := s.Committed(ts(l)); !ok {
					t.Errorf("Committed(%d) missing right after commit", l)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Versions() != 1600 {
		t.Fatalf("Versions = %d, want 1600", s.Versions())
	}
}

// Property: for any random commit order, Committed(t) returns the value of
// the greatest committed timestamp <= t (a model-based check against a map).
func TestQuickCommittedMatchesModel(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		s := Typed(counter{N: -1}, cloneCounter)
		model := map[uint64]int{}
		perm := r.Perm(20)
		for _, p := range perm[:10] {
			l := uint64(p + 1)
			s.Commit(ts(l), counter{N: int(l)})
			model[l] = int(l)
		}
		for q := uint64(0); q <= 21; q++ {
			want, wantOK := -1, false
			for l, n := range model {
				if l <= q && (!wantOK || n > want) {
					want, wantOK = n, true
				}
			}
			got, ok := s.Committed(ts(q))
			if ok != wantOK {
				t.Fatalf("trial %d: Committed(%d) ok=%v want %v", trial, q, ok, wantOK)
			}
			if ok && got.(counter).N != want {
				t.Fatalf("trial %d: Committed(%d) = %d, want %d", trial, q, got.(counter).N, want)
			}
		}
	}
}

// --- LogState ---

type waypoints struct{ Points []int }

func newLogStore() *LogState {
	return NewLog(
		func() any { return &waypoints{} },
		func(st, op any) {
			w := st.(*waypoints)
			w.Points = append(w.Points, op.(int))
		},
	)
}

func TestLogStateRecordAndCommit(t *testing.T) {
	s := newLogStore()
	v := s.View(ts(1)).(*LogView)
	v.Record(10)
	v.Record(20)
	if got := v.Value.(*waypoints).Points; len(got) != 2 || got[1] != 20 {
		t.Fatalf("Record did not apply: %v", got)
	}
	s.Commit(ts(1), v)
	got, ok := s.Committed(ts(1))
	if !ok || len(got.(*waypoints).Points) != 2 {
		t.Fatalf("Committed(1) = %v, %v", got, ok)
	}
}

func TestLogStateReplayOrder(t *testing.T) {
	s := newLogStore()
	// Commit out of order; replay must follow timestamp order.
	v2 := s.View(ts(2)).(*LogView)
	v2.Record(200)
	s.Commit(ts(2), v2)
	v1 := s.View(ts(1)).(*LogView)
	v1.Record(100)
	s.Commit(ts(1), v1)
	got, _ := s.Committed(ts(2))
	pts := got.(*waypoints).Points
	if len(pts) != 2 || pts[0] != 100 || pts[1] != 200 {
		t.Fatalf("replay order wrong: %v", pts)
	}
}

func TestLogStateViewStrictness(t *testing.T) {
	s := newLogStore()
	v1 := s.View(ts(1)).(*LogView)
	v1.Record(1)
	s.Commit(ts(1), v1)
	// View(1) must not include ops committed at 1.
	if got := s.View(ts(1)).(*LogView).Value.(*waypoints).Points; len(got) != 0 {
		t.Fatalf("View(1) includes own-timestamp ops: %v", got)
	}
	if got := s.View(ts(2)).(*LogView).Value.(*waypoints).Points; len(got) != 1 {
		t.Fatalf("View(2) = %v, want one op", got)
	}
}

func TestLogStateDiscardedViewHasNoEffect(t *testing.T) {
	s := newLogStore()
	v := s.View(ts(1)).(*LogView)
	v.Record(1)
	s.Discard(ts(1), v)
	if _, ok := s.Committed(ts(1)); ok {
		t.Fatal("discarded view leaked into committed state")
	}
}

func TestLogStateGCFoldsEntries(t *testing.T) {
	s := newLogStore()
	for l := uint64(1); l <= 5; l++ {
		v := s.View(ts(l)).(*LogView)
		v.Record(int(l))
		s.Commit(ts(l), v)
	}
	s.GC(ts(4))
	if s.Versions() != 3 { // folded(1..3), 4, 5
		t.Fatalf("Versions after GC = %d, want 3", s.Versions())
	}
	got, _ := s.Committed(ts(5))
	if pts := got.(*waypoints).Points; len(pts) != 5 || pts[4] != 5 {
		t.Fatalf("GC corrupted replay: %v", pts)
	}
}
