package state

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

type fuzzPayload struct{ N int }

// FuzzCheckpointDecode hammers the recovery decode path (§5.3): a checkpoint
// arrives as wire bytes from the leader's record of a failed worker, so
// whatever those bytes hold — truncation, version skew, unsorted or
// out-of-range Older chains — RestoreAt must either return an error or
// produce a fence that PickL predicted, that a retained version actually
// carries, and that the restored store commits at.
func FuzzCheckpointDecode(f *testing.F) {
	RegisterState(fuzzPayload{})
	encode := func(cp Checkpoint) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	// A real multi-version checkpoint from a live store.
	st := Typed(fuzzPayload{}, CloneByValue[fuzzPayload]())
	for l := uint64(1); l <= 5; l++ {
		st.Commit(timestamp.New(l), fuzzPayload{N: int(l)})
	}
	cp, ok := Snapshot(st)
	if !ok {
		f.Fatal("snapshot of committed store failed")
	}
	full := encode(cp)
	f.Add(full, uint64(3))
	f.Add(full, uint64(0))
	f.Add(full, uint64(99))
	f.Add(full[:len(full)/2], uint64(3)) // truncated frame
	f.Add(encode(Checkpoint{L: 7}), uint64(3))
	f.Add(encode(Checkpoint{L: 2, HasState: true, State: []byte{1},
		Older: []Version{{L: 9, State: full}, {L: 4}}}), uint64(5)) // skewed, unsorted Older
	f.Add([]byte{}, uint64(1))

	f.Fuzz(func(t *testing.T, raw []byte, atL uint64) {
		var cp Checkpoint
		if gob.NewDecoder(bytes.NewReader(raw)).Decode(&cp) != nil {
			return // undecodable wire bytes are rejected before restore
		}
		if len(cp.Older) > 64 {
			cp.Older = cp.Older[:64] // bound per-input work, not coverage
		}
		dst := NewVersioned(nil, func(v any) any { return v })
		fence, err := RestoreAt(dst, cp, atL)
		if err != nil {
			return // corrupt version payloads must error, never panic
		}
		if want := cp.PickL(atL); fence != want {
			t.Fatalf("RestoreAt fence %d, PickL predicted %d", fence, want)
		}
		versions := cp.allVersions()
		if len(versions) == 0 {
			// Watermark-only: the fence is min(cp.L, atL), store untouched.
			if want := min(cp.L, atL); fence != want {
				t.Fatalf("watermark-only fence %d, want %d", fence, want)
			}
			if _, _, committed := dst.Last(); committed {
				t.Fatal("watermark-only restore committed state")
			}
			return
		}
		found := false
		for _, v := range versions {
			found = found || v.L == fence
		}
		if !found {
			t.Fatalf("fence %d matches no retained version", fence)
		}
		if _, ts, committed := dst.Last(); !committed || ts.L != fence {
			t.Fatalf("store committed at %v (committed=%v), want fence %d", ts, committed, fence)
		}
	})
}
