// Package operator defines the build-time description of ERDOS operators
// (§4.2-§4.3 of the paper): their input and output streams, callbacks,
// state, parallelism, and deadline registrations. The worker runtime (package
// worker) animates these specs; the erdos façade provides typed sugar.
package operator

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/core/lattice"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// DataCallback handles one data message received on input stream index
// `input`. Data callbacks may execute out of timestamp order.
type DataCallback func(ctx *Context, input int, msg message.Message)

// WatermarkCallback runs once per completed timestamp, in timestamp order,
// after every input stream's watermark has reached the timestamp.
type WatermarkCallback func(ctx *Context)

// HandlerCallback is a deadline exception handler (DEH, §5.4). It runs on a
// dedicated goroutine immediately upon a deadline miss.
type HandlerCallback func(ctx *HandlerContext)

// Spec is the build-time description of one operator.
type Spec struct {
	// Name uniquely identifies the operator within its graph.
	Name string
	// Inputs and Outputs list the operator's stream connections in the
	// positional order seen by callbacks.
	Inputs  []stream.ID
	Outputs []stream.ID
	// Mode selects intra-operator parallelism (lattice semantics).
	Mode lattice.Mode
	// NewState constructs the operator's system-managed state store. Nil
	// means the operator is stateless.
	NewState func() state.Store
	// OnData handles data messages; nil ignores them (counters still
	// update for deadline conditions).
	OnData DataCallback
	// OnWatermark handles completed timestamps.
	OnWatermark WatermarkCallback
	// AutoWatermark, when true (the default in the builder), makes the
	// runtime forward the watermark for a completed timestamp on every
	// output stream after OnWatermark returns, and commit the state view.
	AutoWatermark bool
	// Deadlines lists the operator's timestamp deadlines.
	Deadlines []TimestampDeadlineSpec
	// FrequencyDeadlines lists per-input-stream frequency deadlines.
	FrequencyDeadlines []FrequencyDeadlineSpec
	// Placement optionally pins the operator to a named worker.
	Placement string
}

// Validate performs local sanity checks.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("operator: empty name")
	}
	for _, d := range s.FrequencyDeadlines {
		if d.Input < 0 || d.Input >= len(s.Inputs) {
			return fmt.Errorf("operator %q: frequency deadline on input %d of %d", s.Name, d.Input, len(s.Inputs))
		}
	}
	for _, d := range s.Deadlines {
		if d.Output != AllOutputs && (d.Output < 0 || d.Output >= len(s.Outputs)) {
			return fmt.Errorf("operator %q: timestamp deadline on output %d of %d", s.Name, d.Output, len(s.Outputs))
		}
	}
	return nil
}

// AllOutputs registers a timestamp deadline's end condition over every
// output stream of the operator.
const AllOutputs = -1

// TimestampDeadlineSpec registers a timestamp deadline (§5.1): it bounds
// the wall-clock time between the DSC evaluated over received messages and
// the DEC evaluated over messages sent on the selected output stream.
type TimestampDeadlineSpec struct {
	// Name labels the deadline in diagnostics.
	Name string
	// Start is the DSC; nil means the first message for a timestamp.
	Start deadline.Condition
	// End is the DEC; nil means the first sent watermark for t' >= t.
	End deadline.Condition
	// Output selects which output stream's sends feed the DEC
	// (AllOutputs aggregates all of them).
	Output int
	// Value supplies the relative deadline Di. Use deadline.Static for
	// static deadlines or a *deadline.Dynamic fed by a deadline stream
	// from pDP (see Spec in package graph).
	Value deadline.Source
	// Policy selects Abort or Continue handler orchestration (§5.4).
	Policy deadline.Policy
	// Handler is the DEH; nil counts the miss without reacting.
	Handler HandlerCallback
}

// FrequencyDeadlineSpec registers a frequency deadline (§5.1) on one input
// stream: if the next watermark does not arrive within Value of the previous
// one, the runtime inserts a watermark with a low accuracy coordinate on
// that stream, letting the operator eagerly execute with partial input.
type FrequencyDeadlineSpec struct {
	Name string
	// Input is the positional index of the guarded input stream.
	Input int
	// Value supplies the maximum inter-watermark gap.
	Value deadline.Source
	// OnInsert, if non-nil, observes each inserted watermark (used by
	// the evaluation to count simulated arrivals).
	OnInsert func(t timestamp.Timestamp)
}

// Context is passed to data and watermark callbacks. It exposes the
// timestamp being processed, the working state view, the operator's output
// streams, and the deadline allocated to this timestamp by pDP (§4.3).
type Context struct {
	// Timestamp is the logical time of the callback invocation.
	Timestamp timestamp.Timestamp
	// Operator is the operator's name.
	Operator string

	stateView any
	outputs   []Output
	rel       time.Duration
	abs       time.Time
	hasDL     bool
	gate      *Gate
}

// Output is the runtime-provided hook for sending on one output stream.
type Output interface {
	Send(m message.Message) error
	StreamID() stream.ID
}

// NewContext assembles a Context; it is exported for the worker runtime and
// for tests that drive callbacks directly.
func NewContext(op string, t timestamp.Timestamp, stateView any, outputs []Output, rel time.Duration, abs time.Time, hasDL bool, gate *Gate) *Context {
	return &Context{
		Timestamp: t, Operator: op, stateView: stateView,
		outputs: outputs, rel: rel, abs: abs, hasDL: hasDL, gate: gate,
	}
}

// State returns the working state view for this timestamp. All callbacks of
// one timestamp share the view; it is committed when the timestamp's
// watermark is released.
func (c *Context) State() any { return c.stateView }

// Deadline returns the relative deadline Di allocated to this timestamp,
// the absolute wall-clock instant it expires, and whether a deadline is
// armed. Operators use it to proactively pick implementations that fit
// (§5.3).
func (c *Context) Deadline() (rel time.Duration, abs time.Time, ok bool) {
	return c.rel, c.abs, c.hasDL
}

// Aborted reports whether this invocation was aborted by a deadline
// exception handler running under the Abort policy. Long-running anytime
// callbacks should poll it and return promptly.
func (c *Context) Aborted() bool { return c.gate != nil && c.gate.Aborted() }

// Done exposes the abort signal for select-based cancellation (anytime
// algorithms, speculative execution). It never fires for contexts without
// a gate.
func (c *Context) Done() <-chan struct{} {
	if c.gate == nil {
		return nil
	}
	return c.gate.Done()
}

// Send emits a data message with payload p at timestamp t on output i.
// Sends from an aborted invocation are suppressed and return nil.
func (c *Context) Send(i int, t timestamp.Timestamp, p any) error {
	if c.Aborted() {
		return nil
	}
	return c.output(i).Send(message.Data(t, p))
}

// SendWatermark emits a watermark for t on output i, subject to the same
// abort gating as Send.
func (c *Context) SendWatermark(i int, t timestamp.Timestamp) error {
	if c.Aborted() {
		return nil
	}
	return c.output(i).Send(message.Watermark(t))
}

// NumOutputs returns the operator's output stream count.
func (c *Context) NumOutputs() int { return len(c.outputs) }

func (c *Context) output(i int) Output {
	if i < 0 || i >= len(c.outputs) {
		panic(fmt.Sprintf("operator %q: output index %d out of range (%d outputs)", c.Operator, i, len(c.outputs)))
	}
	return c.outputs[i]
}

// HandlerContext is passed to deadline exception handlers (§5.4).
type HandlerContext struct {
	// Miss describes the missed deadline.
	Miss deadline.Miss
	// Operator is the operator's name.
	Operator string
	// Committed is a view of the last committed state for t' < t.
	Committed any
	// Dirty is the working view mutated by the partially-executed
	// proactive strategy for t (nil if none started). Under Abort the
	// handler amends it and the runtime commits the amended view; under
	// Continue the handler must treat it as read-only.
	Dirty any

	outputs []Output
}

// NewHandlerContext assembles a HandlerContext for the worker runtime.
func NewHandlerContext(op string, miss deadline.Miss, committed, dirty any, outputs []Output) *HandlerContext {
	return &HandlerContext{Miss: miss, Operator: op, Committed: committed, Dirty: dirty, outputs: outputs}
}

// Send emits a data message from the handler; handler sends bypass abort
// gating so reactive measures can always release output.
func (h *HandlerContext) Send(i int, t timestamp.Timestamp, p any) error {
	return h.output(i).Send(message.Data(t, p))
}

// SendWatermark emits a watermark from the handler, notifying downstream
// computation of the (reactively produced) completion of t.
func (h *HandlerContext) SendWatermark(i int, t timestamp.Timestamp) error {
	return h.output(i).Send(message.Watermark(t))
}

func (h *HandlerContext) output(i int) Output {
	if i < 0 || i >= len(h.outputs) {
		panic(fmt.Sprintf("operator %q handler: output index %d out of range (%d outputs)", h.Operator, i, len(h.outputs)))
	}
	return h.outputs[i]
}

// Gate carries the abort flag shared between a proactive invocation and the
// deadline machinery.
type Gate struct{ aborted chan struct{} }

// NewGate returns an open gate.
func NewGate() *Gate { return &Gate{aborted: make(chan struct{})} }

// Abort closes the gate; subsequent sends from the gated invocation are
// suppressed. Abort is idempotent.
func (g *Gate) Abort() {
	select {
	case <-g.aborted:
	default:
		close(g.aborted)
	}
}

// Aborted reports whether the gate was aborted.
func (g *Gate) Aborted() bool {
	select {
	case <-g.aborted:
		return true
	default:
		return false
	}
}

// Done exposes the abort signal for select-based cancellation in anytime
// algorithms.
func (g *Gate) Done() <-chan struct{} { return g.aborted }
