package operator

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

type recOutput struct {
	id   stream.ID
	msgs []message.Message
}

func (o *recOutput) Send(m message.Message) error { o.msgs = append(o.msgs, m); return nil }
func (o *recOutput) StreamID() stream.ID          { return o.id }

func TestSpecValidate(t *testing.T) {
	ok := &Spec{Name: "x", Inputs: []stream.ID{1}, Outputs: []stream.ID{2}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Spec{}).Validate(); err == nil {
		t.Fatal("empty name accepted")
	}
	bad := &Spec{Name: "x", Inputs: []stream.ID{1},
		FrequencyDeadlines: []FrequencyDeadlineSpec{{Input: 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad frequency input accepted")
	}
	bad2 := &Spec{Name: "x", Outputs: []stream.ID{1},
		Deadlines: []TimestampDeadlineSpec{{Output: 7}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("bad deadline output accepted")
	}
	allOut := &Spec{Name: "x", Outputs: []stream.ID{1},
		Deadlines: []TimestampDeadlineSpec{{Output: AllOutputs}}}
	if err := allOut.Validate(); err != nil {
		t.Fatalf("AllOutputs rejected: %v", err)
	}
}

func TestContextSendAndGating(t *testing.T) {
	out := &recOutput{id: 1}
	gate := NewGate()
	ts := timestamp.New(4)
	ctx := NewContext("op", ts, "state", []Output{out}, 50*time.Millisecond, time.Now(), true, gate)

	if ctx.State().(string) != "state" {
		t.Fatal("state lost")
	}
	if ctx.NumOutputs() != 1 {
		t.Fatal("outputs lost")
	}
	rel, _, ok := ctx.Deadline()
	if !ok || rel != 50*time.Millisecond {
		t.Fatalf("Deadline = %v, %v", rel, ok)
	}
	if err := ctx.Send(0, ts, 42); err != nil {
		t.Fatal(err)
	}
	if err := ctx.SendWatermark(0, ts); err != nil {
		t.Fatal(err)
	}
	if len(out.msgs) != 2 {
		t.Fatalf("sent %d messages", len(out.msgs))
	}
	// Abort gates subsequent sends silently.
	gate.Abort()
	if !ctx.Aborted() {
		t.Fatal("Aborted not visible")
	}
	if err := ctx.Send(0, ts, 43); err != nil {
		t.Fatal(err)
	}
	if err := ctx.SendWatermark(0, ts.Succ()); err != nil {
		t.Fatal(err)
	}
	if len(out.msgs) != 2 {
		t.Fatalf("aborted sends leaked: %d messages", len(out.msgs))
	}
}

func TestContextOutputRangePanics(t *testing.T) {
	ctx := NewContext("op", timestamp.New(0), nil, nil, 0, time.Time{}, false, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range output")
		}
	}()
	_ = ctx.Send(0, timestamp.New(0), 1)
}

func TestHandlerContextSendsBypassGating(t *testing.T) {
	out := &recOutput{id: 9}
	miss := deadline.Miss{Timestamp: timestamp.New(7), Relative: time.Millisecond}
	h := NewHandlerContext("op", miss, "committed", "dirty", []Output{out})
	if h.Committed.(string) != "committed" || h.Dirty.(string) != "dirty" {
		t.Fatalf("views lost: %+v", h)
	}
	if err := h.Send(0, miss.Timestamp, "reactive"); err != nil {
		t.Fatal(err)
	}
	if err := h.SendWatermark(0, miss.Timestamp); err != nil {
		t.Fatal(err)
	}
	if len(out.msgs) != 2 {
		t.Fatalf("handler sends = %d", len(out.msgs))
	}
}

func TestGateIdempotentAndDone(t *testing.T) {
	g := NewGate()
	if g.Aborted() {
		t.Fatal("fresh gate aborted")
	}
	select {
	case <-g.Done():
		t.Fatal("fresh gate done")
	default:
	}
	g.Abort()
	g.Abort() // idempotent
	if !g.Aborted() {
		t.Fatal("abort lost")
	}
	select {
	case <-g.Done():
	default:
		t.Fatal("Done channel not closed")
	}
}

func TestNilGateContext(t *testing.T) {
	ctx := NewContext("op", timestamp.New(0), nil, []Output{&recOutput{}}, 0, time.Time{}, false, nil)
	if ctx.Aborted() {
		t.Fatal("nil gate must read as not aborted")
	}
	if err := ctx.Send(0, timestamp.New(0), 1); err != nil {
		t.Fatal(err)
	}
}
