package stream

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

type capture struct {
	mu   sync.Mutex
	msgs []message.Message
}

func (c *capture) Deliver(_ ID, m message.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *capture) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func TestBroadcastDeliversToAllSubscribers(t *testing.T) {
	b := NewBroadcaster(NewID(), "s")
	subs := []*capture{{}, {}, {}}
	for _, s := range subs {
		b.Subscribe(s)
	}
	if err := b.Send(message.Data(timestamp.New(1), 42)); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(message.Watermark(timestamp.New(1))); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		if s.len() != 2 {
			t.Fatalf("subscriber %d got %d messages, want 2", i, s.len())
		}
		if s.msgs[0].Payload.(int) != 42 {
			t.Fatalf("subscriber %d payload = %v", i, s.msgs[0].Payload)
		}
	}
}

func TestZeroCopySharedPayload(t *testing.T) {
	b := NewBroadcaster(NewID(), "s")
	var got []*[]byte
	for i := 0; i < 3; i++ {
		b.Subscribe(SubscriberFunc(func(_ ID, m message.Message) {
			p := m.Payload.(*[]byte)
			got = append(got, p)
		}))
	}
	payload := make([]byte, 1<<20)
	if err := b.Send(message.Data(timestamp.New(0), &payload)); err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		if p != &payload {
			t.Fatalf("subscriber %d received a copy, want the same pointer", i)
		}
	}
}

func TestWatermarkRegressionRejected(t *testing.T) {
	b := NewBroadcaster(NewID(), "s")
	if err := b.Send(message.Watermark(timestamp.New(5))); err != nil {
		t.Fatal(err)
	}
	err := b.Send(message.Watermark(timestamp.New(4)))
	if !errors.Is(err, ErrWatermarkRegression) {
		t.Fatalf("err = %v, want ErrWatermarkRegression", err)
	}
	// Equal watermark is permitted (idempotent completion signal).
	if err := b.Send(message.Watermark(timestamp.New(5))); err != nil {
		t.Fatalf("equal watermark should be accepted: %v", err)
	}
}

func TestLateDataRejected(t *testing.T) {
	b := NewBroadcaster(NewID(), "s")
	if err := b.Send(message.Watermark(timestamp.New(5))); err != nil {
		t.Fatal(err)
	}
	err := b.Send(message.Data(timestamp.New(5), "late"))
	if !errors.Is(err, ErrLateMessage) {
		t.Fatalf("err = %v, want ErrLateMessage", err)
	}
	if err := b.Send(message.Data(timestamp.New(6), "ok")); err != nil {
		t.Fatalf("future data should be accepted: %v", err)
	}
}

func TestClosedStreamRejectsEverything(t *testing.T) {
	b := NewBroadcaster(NewID(), "s")
	if err := b.Send(message.Top()); err != nil {
		t.Fatal(err)
	}
	if !b.Closed() {
		t.Fatal("stream should be closed after Top watermark")
	}
	if err := b.Send(message.Data(timestamp.New(9), 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("data after close: err = %v, want ErrClosed", err)
	}
	if err := b.Send(message.Watermark(timestamp.New(9))); !errors.Is(err, ErrClosed) {
		t.Fatalf("watermark after close: err = %v, want ErrClosed", err)
	}
}

func TestStatsCounters(t *testing.T) {
	b := NewBroadcaster(NewID(), "s")
	for i := 0; i < 3; i++ {
		if err := b.Send(message.Data(timestamp.New(uint64(i)), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Send(message.Watermark(timestamp.New(2))); err != nil {
		t.Fatal(err)
	}
	d, w := b.Stats()
	if d != 3 || w != 1 {
		t.Fatalf("Stats = (%d, %d), want (3, 1)", d, w)
	}
}

func TestTypedWrapper(t *testing.T) {
	b := NewBroadcaster(NewID(), "typed")
	c := &capture{}
	b.Subscribe(c)
	ws := Wrap[string](b)
	if err := ws.Send(timestamp.New(1), "hello"); err != nil {
		t.Fatal(err)
	}
	if err := ws.SendWatermark(timestamp.New(1)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	if c.len() != 3 {
		t.Fatalf("got %d messages, want 3", c.len())
	}
	if got := Payload[string](c.msgs[0]); got != "hello" {
		t.Fatalf("Payload = %q", got)
	}
}

func TestPayloadTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on payload type mismatch")
		}
	}()
	Payload[int](message.Data(timestamp.New(0), "not an int"))
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate stream ID %d", id)
		}
		seen[id] = true
	}
}

// Property: any sequence of sends accepted by the broadcaster leaves the
// watermark monotone and never delivers a data message at or below the
// watermark that preceded it.
func TestQuickInvariantsUnderRandomTraffic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		b := NewBroadcaster(NewID(), "rand")
		type wmState struct {
			ts  timestamp.Timestamp
			set bool
		}
		var wmAtSend []wmState
		var kinds []message.Kind
		var stamps []timestamp.Timestamp
		b.Subscribe(SubscriberFunc(func(_ ID, m message.Message) {
			kinds = append(kinds, m.Kind)
			stamps = append(stamps, m.Timestamp)
		}))
		var lastWM timestamp.Timestamp
		hasWM := false
		for i := 0; i < 50; i++ {
			ts := timestamp.New(uint64(r.Intn(10)))
			var m message.Message
			if r.Intn(2) == 0 {
				m = message.Data(ts, i)
			} else {
				m = message.Watermark(ts)
			}
			if err := b.Send(m); err == nil {
				wmAtSend = append(wmAtSend, wmState{ts: lastWM, set: hasWM})
				if m.IsWatermark() {
					lastWM, hasWM = ts, true
				}
			}
		}
		// Check monotone watermarks in delivered order.
		var prev timestamp.Timestamp
		seen := false
		for i, k := range kinds {
			if k == message.KindWatermark {
				if seen && stamps[i].Less(prev) {
					t.Fatalf("trial %d: delivered watermark regressed: %v after %v", trial, stamps[i], prev)
				}
				prev, seen = stamps[i], true
			} else if i < len(wmAtSend) {
				// Data must be above the watermark seen at its send time.
				if wmAtSend[i].set && stamps[i].LessEq(wmAtSend[i].ts) {
					t.Fatalf("trial %d: late data delivered: %v at watermark %v", trial, stamps[i], wmAtSend[i].ts)
				}
			}
		}
	}
}
