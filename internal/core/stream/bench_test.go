package stream

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// BenchmarkBroadcastZeroCopy measures the intra-worker send path: one data
// message delivered by reference to 5 subscribers.
func BenchmarkBroadcastZeroCopy(b *testing.B) {
	br := NewBroadcaster(NewID(), "bench")
	for i := 0; i < 5; i++ {
		br.Subscribe(SubscriberFunc(func(ID, message.Message) {}))
	}
	payload := make([]byte, 6<<20)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := br.Send(message.Data(timestamp.New(uint64(i+1)), payload)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWatermarkSend(b *testing.B) {
	br := NewBroadcaster(NewID(), "bench")
	br.Subscribe(SubscriberFunc(func(ID, message.Message) {}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := br.Send(message.Watermark(timestamp.New(uint64(i + 1)))); err != nil {
			b.Fatal(err)
		}
	}
}
