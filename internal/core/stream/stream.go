// Package stream implements ERDOS' typed streams (§4.2 of the paper).
//
// A stream connects one producing operator to any number of consuming
// operators and carries timestamped data messages and watermark messages.
// Internally the runtime is untyped — a stream delivers message.Message
// values to subscribers — while the generic WriteStream[T]/ReadStream[T]
// wrappers restore compile-time type safety at the operator boundary.
//
// The writer side enforces the stream invariants that the rest of the system
// relies on:
//
//   - watermarks are monotonically non-decreasing;
//   - a data message may not be sent for a timestamp at or below the
//     stream's current watermark (its completion has already been signalled);
//   - nothing may be sent after the final (Top) watermark.
package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// ID uniquely identifies a stream within a dataflow graph.
type ID uint64

var nextID atomic.Uint64

// NewID allocates a fresh process-unique stream ID.
func NewID() ID { return ID(nextID.Add(1)) }

// Errors returned by the writer side of a stream.
var (
	// ErrClosed is returned when sending on a stream whose final watermark
	// has already been sent.
	ErrClosed = errors.New("stream: closed (final watermark already sent)")
	// ErrWatermarkRegression is returned when a watermark would move the
	// stream's low watermark backwards.
	ErrWatermarkRegression = errors.New("stream: watermark regression")
	// ErrLateMessage is returned when a data message is sent for a
	// timestamp whose completion was already signalled by a watermark.
	ErrLateMessage = errors.New("stream: data message at or below watermark")
)

// Subscriber consumes the messages sent on a stream. Deliver must not
// block indefinitely; the runtime's inboxes are unbounded queues.
type Subscriber interface {
	Deliver(id ID, m message.Message)
}

// SubscriberFunc adapts a function to the Subscriber interface.
type SubscriberFunc func(id ID, m message.Message)

// Deliver implements Subscriber.
func (f SubscriberFunc) Deliver(id ID, m message.Message) { f(id, m) }

// Broadcaster is the writer end of a stream: it validates the stream
// invariants and delivers each message to every subscriber. Intra-worker
// subscribers receive the same Message value (zero copy); inter-worker
// transports serialize it once per remote worker.
//
// The data-message path is lock-free: the subscriber list is a copy-on-write
// snapshot, the send counters are atomics, and the watermark state is an
// immutable snapshot swapped atomically. Only watermark sends (which advance
// that state) and Subscribe take the mutex. Under concurrent writers the
// invariant checks are best-effort — a data message racing a watermark send
// may validate against the pre-watermark state — which matches delivery
// semantics, since delivery already happened outside the lock.
type Broadcaster struct {
	id   ID
	name string

	mu       sync.Mutex                   // serializes Subscribe and watermark transitions
	subs     atomic.Pointer[[]Subscriber] // copy-on-write subscriber snapshot
	wm       atomic.Pointer[wmState]      // immutable watermark snapshot
	sentData atomic.Uint64
	sentWM   atomic.Uint64
}

// wmState is an immutable snapshot of a stream's watermark progress.
type wmState struct {
	ts     timestamp.Timestamp
	has    bool
	closed bool
}

// NewBroadcaster returns the writer end of stream id.
func NewBroadcaster(id ID, name string) *Broadcaster {
	b := &Broadcaster{id: id, name: name}
	b.wm.Store(&wmState{})
	return b
}

// ID returns the stream's identifier.
func (b *Broadcaster) ID() ID { return b.id }

// Name returns the stream's diagnostic name.
func (b *Broadcaster) Name() string { return b.name }

// Subscribe registers a subscriber. Subscribers added after messages have
// been sent only observe subsequent messages.
func (b *Broadcaster) Subscribe(s Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var old []Subscriber
	if p := b.subs.Load(); p != nil {
		old = *p
	}
	next := make([]Subscriber, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	b.subs.Store(&next)
}

// Send validates and broadcasts m, returning an error if m violates the
// stream invariants. Delivery order to each subscriber matches send order.
// Data messages take no lock: validation reads the watermark snapshot, the
// counter bump is atomic, and fan-out iterates a copy-on-write slice.
func (b *Broadcaster) Send(m message.Message) error {
	st := b.wm.Load()
	switch m.Kind {
	case message.KindWatermark:
		b.mu.Lock()
		st = b.wm.Load() // revalidate under the lock; watermarks serialize
		if st.closed {
			b.mu.Unlock()
			return fmt.Errorf("%w: stream %q", ErrClosed, b.name)
		}
		if st.has && m.Timestamp.Less(st.ts) {
			b.mu.Unlock()
			return fmt.Errorf("%w: stream %q: %v after %v",
				ErrWatermarkRegression, b.name, m.Timestamp, st.ts)
		}
		b.wm.Store(&wmState{ts: m.Timestamp, has: true, closed: m.Timestamp.IsTop()})
		b.mu.Unlock()
		b.sentWM.Add(1)
	case message.KindData:
		if st.closed {
			return fmt.Errorf("%w: stream %q", ErrClosed, b.name)
		}
		if st.has && m.Timestamp.LessEq(st.ts) {
			return fmt.Errorf("%w: stream %q: %v at watermark %v",
				ErrLateMessage, b.name, m.Timestamp, st.ts)
		}
		b.sentData.Add(1)
	default:
		return fmt.Errorf("stream %q: unknown message kind %v", b.name, m.Kind)
	}
	if p := b.subs.Load(); p != nil {
		for _, s := range *p {
			s.Deliver(b.id, m)
		}
	}
	return nil
}

// Watermark returns the stream's current watermark and whether one has been
// sent yet.
func (b *Broadcaster) Watermark() (timestamp.Timestamp, bool) {
	st := b.wm.Load()
	return st.ts, st.has
}

// Closed reports whether the final watermark has been sent.
func (b *Broadcaster) Closed() bool {
	return b.wm.Load().closed
}

// Stats returns the number of data messages and watermarks sent so far.
// The deadline machinery consumes these counters when evaluating deadline
// end conditions (§5.1).
func (b *Broadcaster) Stats() (data, watermarks uint64) {
	return b.sentData.Load(), b.sentWM.Load()
}

// WriteStream is the typed writer handle exposed to operators: a stream of
// element type T.
type WriteStream[T any] struct {
	b *Broadcaster
}

// Wrap returns a typed writer over b.
func Wrap[T any](b *Broadcaster) WriteStream[T] { return WriteStream[T]{b: b} }

// Send sends a data message with payload v at timestamp t.
func (w WriteStream[T]) Send(t timestamp.Timestamp, v T) error {
	return w.b.Send(message.Data(t, v))
}

// SendWatermark sends a watermark for timestamp t.
func (w WriteStream[T]) SendWatermark(t timestamp.Timestamp) error {
	return w.b.Send(message.Watermark(t))
}

// Close sends the final watermark.
func (w WriteStream[T]) Close() error { return w.b.Send(message.Top()) }

// ID returns the underlying stream ID.
func (w WriteStream[T]) ID() ID { return w.b.ID() }

// Payload extracts a typed payload from an untyped message. It panics with
// a descriptive message when the stream wiring is inconsistent, which is a
// programming error caught by graph validation in normal use.
func Payload[T any](m message.Message) T {
	v, ok := m.Payload.(T)
	if !ok {
		panic(fmt.Sprintf("stream: payload type %T does not match callback type %T", m.Payload, v))
	}
	return v
}
