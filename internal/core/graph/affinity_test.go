package graph

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
)

func affinityGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.AddStream("a", "int")
	b := g.AddStream("b", "int")
	c := g.AddStream("c", "int")
	if err := g.MarkIngest(a); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, in, out []stream.ID) {
		spec := &operator.Spec{Name: name, Inputs: in, Outputs: out}
		if err := g.AddOperator(spec); err != nil {
			t.Fatal(err)
		}
	}
	mk("src", []stream.ID{a}, []stream.ID{b})
	mk("mid", []stream.ID{b}, []stream.ID{c})
	mk("sink", []stream.ID{c}, nil)
	return g
}

func TestWithAffinityGroupsAndLookup(t *testing.T) {
	g := affinityGraph(t)
	if err := g.WithAffinity("src", "mid"); err != nil {
		t.Fatal(err)
	}
	if idx, ok := g.AffinityOf("src"); !ok || idx != 0 {
		t.Fatalf("AffinityOf(src) = %d, %v", idx, ok)
	}
	if idx, ok := g.AffinityOf("mid"); !ok || idx != 0 {
		t.Fatalf("AffinityOf(mid) = %d, %v", idx, ok)
	}
	if _, ok := g.AffinityOf("sink"); ok {
		t.Fatal("sink should have no affinity group")
	}
	groups := g.AffinityGroups()
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithAffinityRejectsBadGroups(t *testing.T) {
	g := affinityGraph(t)
	if err := g.WithAffinity("src"); err == nil {
		t.Fatal("single-operator group accepted")
	}
	if err := g.WithAffinity("src", "nope"); err == nil {
		t.Fatal("unregistered operator accepted")
	}
	if err := g.WithAffinity("src", "mid"); err != nil {
		t.Fatal(err)
	}
	if err := g.WithAffinity("mid", "sink"); err == nil {
		t.Fatal("operator admitted to two groups")
	}
}
