// Package graph implements build-time construction and validation of ERDOS
// dataflow graphs (§4.2). The static registration of every operator's input
// and output streams lets the system verify that the computation graph is
// well-formed before execution, and gives the scheduler the information it
// needs to place operators onto workers.
package graph

import (
	"fmt"

	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// StreamSpec is the build-time description of one stream.
type StreamSpec struct {
	ID stream.ID
	// Name is the diagnostic name.
	Name string
	// TypeName records the payload type for well-formedness checking; the
	// typed façade fills it via reflection.
	TypeName string
	// Ingest marks streams written by the application rather than by an
	// operator (sources of the graph).
	Ingest bool
}

// DeadlineFeed routes a stream of relative-deadline updates (sent by the
// deadline policy pDP as time.Duration payloads) into a dynamic deadline
// source (§5.2).
type DeadlineFeed struct {
	Stream stream.ID
	Target *deadline.Dynamic
}

// Graph is a dataflow graph under construction.
type Graph struct {
	streams map[stream.ID]*StreamSpec
	order   []stream.ID
	ops     []*operator.Spec
	opNames map[string]bool
	feeds   []DeadlineFeed

	// affinity maps operator name → affinity group index; groups are
	// placement hints asking the scheduler to co-locate the operators.
	affinity map[string]int
	groups   [][]string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		streams:  make(map[stream.ID]*StreamSpec),
		opNames:  make(map[string]bool),
		affinity: make(map[string]int),
	}
}

// WithAffinity declares the named operators — typically a producer→consumer
// chain — as a co-location group: within a worker they share a home shard
// on the execution lattice, and across a cluster the scheduler keeps
// unpinned members on the same worker. It is a hint, not an isolation
// boundary: work stealing may still move callbacks, and an explicit
// operator Placement overrides the group. Call after the operators are
// registered; an operator may belong to at most one group.
func (g *Graph) WithAffinity(ops ...string) error {
	if len(ops) < 2 {
		return fmt.Errorf("graph: affinity group needs at least two operators")
	}
	for _, name := range ops {
		if !g.opNames[name] {
			return fmt.Errorf("graph: affinity group names unregistered operator %q", name)
		}
		if prev, ok := g.affinity[name]; ok {
			return fmt.Errorf("graph: operator %q already in affinity group %d", name, prev)
		}
	}
	idx := len(g.groups)
	g.groups = append(g.groups, append([]string(nil), ops...))
	for _, name := range ops {
		g.affinity[name] = idx
	}
	return nil
}

// AffinityGroups returns the declared co-location groups in declaration
// order.
func (g *Graph) AffinityGroups() [][]string { return g.groups }

// AffinityOf returns the affinity group index of an operator, if any.
func (g *Graph) AffinityOf(op string) (int, bool) {
	idx, ok := g.affinity[op]
	return idx, ok
}

// AddStream registers a stream and returns its ID.
func (g *Graph) AddStream(name, typeName string) stream.ID {
	id := stream.NewID()
	g.streams[id] = &StreamSpec{ID: id, Name: name, TypeName: typeName}
	g.order = append(g.order, id)
	return id
}

// MarkIngest flags a stream as application-written (a graph source).
func (g *Graph) MarkIngest(id stream.ID) error {
	s, ok := g.streams[id]
	if !ok {
		return fmt.Errorf("graph: unknown stream %d", id)
	}
	s.Ingest = true
	return nil
}

// Stream returns the spec of a registered stream.
func (g *Graph) Stream(id stream.ID) (*StreamSpec, bool) {
	s, ok := g.streams[id]
	return s, ok
}

// Streams returns the stream specs in registration order.
func (g *Graph) Streams() []*StreamSpec {
	out := make([]*StreamSpec, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.streams[id])
	}
	return out
}

// AddOperator registers an operator spec.
func (g *Graph) AddOperator(spec *operator.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if g.opNames[spec.Name] {
		return fmt.Errorf("graph: duplicate operator name %q", spec.Name)
	}
	for _, id := range spec.Inputs {
		if _, ok := g.streams[id]; !ok {
			return fmt.Errorf("graph: operator %q reads unregistered stream %d", spec.Name, id)
		}
	}
	for _, id := range spec.Outputs {
		if _, ok := g.streams[id]; !ok {
			return fmt.Errorf("graph: operator %q writes unregistered stream %d", spec.Name, id)
		}
	}
	g.opNames[spec.Name] = true
	g.ops = append(g.ops, spec)
	return nil
}

// Operators returns the registered operator specs in registration order.
func (g *Graph) Operators() []*operator.Spec { return g.ops }

// AddDeadlineFeed routes updates arriving on a stream (time.Duration
// payloads from pDP) into the dynamic deadline source target.
func (g *Graph) AddDeadlineFeed(id stream.ID, target *deadline.Dynamic) error {
	if _, ok := g.streams[id]; !ok {
		return fmt.Errorf("graph: deadline feed on unregistered stream %d", id)
	}
	if target == nil {
		return fmt.Errorf("graph: nil deadline feed target")
	}
	g.feeds = append(g.feeds, DeadlineFeed{Stream: id, Target: target})
	return nil
}

// DeadlineFeeds returns the registered deadline feeds.
func (g *Graph) DeadlineFeeds() []DeadlineFeed { return g.feeds }

// Validate checks that the graph is well-formed:
//
//   - every stream has at most one writer; ingest streams have none;
//   - every non-ingest stream that is read is written by some operator;
//   - no operator reads and writes the same stream (self-loop through a
//     single stream; feedback loops must pass through distinct streams).
func (g *Graph) Validate() error {
	writers := make(map[stream.ID]string)
	for _, op := range g.ops {
		seen := make(map[stream.ID]bool, len(op.Inputs))
		for _, id := range op.Inputs {
			seen[id] = true
		}
		for _, id := range op.Outputs {
			if seen[id] {
				return fmt.Errorf("graph: operator %q both reads and writes stream %q", op.Name, g.streams[id].Name)
			}
			if w, dup := writers[id]; dup {
				return fmt.Errorf("graph: stream %q written by both %q and %q", g.streams[id].Name, w, op.Name)
			}
			if g.streams[id].Ingest {
				return fmt.Errorf("graph: ingest stream %q also written by operator %q", g.streams[id].Name, op.Name)
			}
			writers[id] = op.Name
		}
	}
	for _, op := range g.ops {
		for _, id := range op.Inputs {
			s := g.streams[id]
			if s.Ingest {
				continue
			}
			if _, ok := writers[id]; !ok {
				return fmt.Errorf("graph: operator %q reads stream %q which has no writer", op.Name, s.Name)
			}
		}
	}
	for _, f := range g.feeds {
		s := g.streams[f.Stream]
		if !s.Ingest {
			if _, ok := writers[f.Stream]; !ok {
				return fmt.Errorf("graph: deadline feed reads stream %q which has no writer", s.Name)
			}
		}
	}
	return nil
}

// Readers returns the names of operators reading stream id.
func (g *Graph) Readers(id stream.ID) []string {
	var out []string
	for _, op := range g.ops {
		for _, in := range op.Inputs {
			if in == id {
				out = append(out, op.Name)
				break
			}
		}
	}
	return out
}

// Writer returns the name of the operator writing stream id, if any.
func (g *Graph) Writer(id stream.ID) (string, bool) {
	for _, op := range g.ops {
		for _, out := range op.Outputs {
			if out == id {
				return op.Name, true
			}
		}
	}
	return "", false
}
