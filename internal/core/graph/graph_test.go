package graph

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
)

func TestAddStreamAndLookup(t *testing.T) {
	g := New()
	id := g.AddStream("camera", "[]byte")
	s, ok := g.Stream(id)
	if !ok || s.Name != "camera" || s.TypeName != "[]byte" {
		t.Fatalf("Stream = %+v, %v", s, ok)
	}
	if _, ok := g.Stream(stream.ID(99999)); ok {
		t.Fatal("unknown stream resolved")
	}
	if len(g.Streams()) != 1 {
		t.Fatalf("Streams = %d", len(g.Streams()))
	}
}

func TestMarkIngest(t *testing.T) {
	g := New()
	id := g.AddStream("s", "int")
	if err := g.MarkIngest(id); err != nil {
		t.Fatal(err)
	}
	s, _ := g.Stream(id)
	if !s.Ingest {
		t.Fatal("not marked")
	}
	if err := g.MarkIngest(stream.ID(424242)); err == nil {
		t.Fatal("marking unknown stream must fail")
	}
}

func TestAddOperatorValidation(t *testing.T) {
	g := New()
	in := g.AddStream("in", "int")
	if err := g.AddOperator(&operator.Spec{Name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := g.AddOperator(&operator.Spec{Name: "a", Inputs: []stream.ID{stream.ID(777)}}); err == nil {
		t.Fatal("unregistered input accepted")
	}
	if err := g.AddOperator(&operator.Spec{Name: "a", Outputs: []stream.ID{stream.ID(777)}}); err == nil {
		t.Fatal("unregistered output accepted")
	}
	if err := g.AddOperator(&operator.Spec{Name: "a", Inputs: []stream.ID{in}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOperator(&operator.Spec{Name: "a", Inputs: []stream.ID{in}}); err == nil {
		t.Fatal("duplicate operator name accepted")
	}
	if err := g.AddOperator(&operator.Spec{
		Name:   "bad-freq",
		Inputs: []stream.ID{in},
		FrequencyDeadlines: []operator.FrequencyDeadlineSpec{
			{Name: "f", Input: 3, Value: deadline.Static(time.Millisecond)},
		},
	}); err == nil {
		t.Fatal("out-of-range frequency-deadline input accepted")
	}
	out := g.AddStream("out", "int")
	if err := g.AddOperator(&operator.Spec{
		Name:    "bad-dl",
		Inputs:  []stream.ID{in},
		Outputs: []stream.ID{out},
		Deadlines: []operator.TimestampDeadlineSpec{
			{Name: "d", Output: 5, Value: deadline.Static(time.Millisecond)},
		},
	}); err == nil {
		t.Fatal("out-of-range deadline output accepted")
	}
}

func TestWriterAndReaders(t *testing.T) {
	g := New()
	in := g.AddStream("in", "int")
	mid := g.AddStream("mid", "int")
	_ = g.MarkIngest(in)
	_ = g.AddOperator(&operator.Spec{Name: "p", Inputs: []stream.ID{in}, Outputs: []stream.ID{mid}})
	_ = g.AddOperator(&operator.Spec{Name: "c1", Inputs: []stream.ID{mid}})
	_ = g.AddOperator(&operator.Spec{Name: "c2", Inputs: []stream.ID{mid}})
	if w, ok := g.Writer(mid); !ok || w != "p" {
		t.Fatalf("Writer = %q, %v", w, ok)
	}
	if _, ok := g.Writer(in); ok {
		t.Fatal("ingest stream has no operator writer")
	}
	readers := g.Readers(mid)
	if len(readers) != 2 {
		t.Fatalf("Readers = %v", readers)
	}
}

func TestValidateFeedbackLoopAllowed(t *testing.T) {
	// D3's feedback loop (pDP -> operators -> pDP) uses distinct streams;
	// cycles through distinct streams must validate.
	g := New()
	envInfo := g.AddStream("env", "Env")
	deadlines := g.AddStream("deadlines", "time.Duration")
	in := g.AddStream("in", "int")
	_ = g.MarkIngest(in)
	_ = g.AddOperator(&operator.Spec{Name: "op", Inputs: []stream.ID{in, deadlines}, Outputs: []stream.ID{envInfo}})
	_ = g.AddOperator(&operator.Spec{Name: "pdp", Inputs: []stream.ID{envInfo}, Outputs: []stream.ID{deadlines}})
	if err := g.Validate(); err != nil {
		t.Fatalf("feedback loop rejected: %v", err)
	}
}

func TestDeadlineFeeds(t *testing.T) {
	g := New()
	dls := g.AddStream("deadlines", "time.Duration")
	_ = g.MarkIngest(dls)
	dyn := deadline.NewDynamic(time.Millisecond)
	if err := g.AddDeadlineFeed(dls, dyn); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDeadlineFeed(stream.ID(31337), dyn); err == nil {
		t.Fatal("unknown stream feed accepted")
	}
	if err := g.AddDeadlineFeed(dls, nil); err == nil {
		t.Fatal("nil target accepted")
	}
	if len(g.DeadlineFeeds()) != 1 {
		t.Fatalf("feeds = %d", len(g.DeadlineFeeds()))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFeedOnWriterlessStream(t *testing.T) {
	g := New()
	dls := g.AddStream("deadlines", "time.Duration") // not ingest, no writer
	dyn := deadline.NewDynamic(time.Millisecond)
	_ = g.AddDeadlineFeed(dls, dyn)
	if err := g.Validate(); err == nil {
		t.Fatal("feed on writer-less stream must fail validation")
	}
}
