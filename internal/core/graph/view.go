// A View is the read side of a dataflow graph: everything the scheduler,
// router and worker runtime consume, without the construction API. *Graph
// satisfies it directly; Multi composes several graphs — the base graph
// plus tenant pipelines admitted at runtime — behind the same surface, so
// the placement and failover machinery is tenancy-blind.
package graph

import (
	"fmt"
	"sync"

	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// View is the read-only surface of one or more dataflow graphs.
type View interface {
	// Operators returns operator specs in registration order.
	Operators() []*operator.Spec
	// Streams returns stream specs in registration order.
	Streams() []*StreamSpec
	// Readers returns the names of operators reading stream id.
	Readers(id stream.ID) []string
	// Writer returns the operator writing stream id, if any.
	Writer(id stream.ID) (string, bool)
	// AffinityOf returns the co-location group index of an operator, if any.
	AffinityOf(op string) (int, bool)
	// DeadlineFeeds returns the registered dynamic-deadline feeds.
	DeadlineFeeds() []DeadlineFeed
	// Validate checks well-formedness.
	Validate() error
}

var _ View = (*Graph)(nil)

// Multi composes several independently-built graphs into one View. Stream
// IDs are globally unique (stream.NewID is a process-wide counter), so the
// parts never collide on streams; Add rejects duplicate operator names so
// the composite keeps the one-writer/unique-name invariants of a single
// graph. Affinity group indices are offset per part, so two tenants'
// group 0 stay distinct co-location groups.
//
// Add only ever appends, and the parts themselves are immutable once
// built, so a Multi may be shared between a leader and its local workers:
// every method takes a snapshot under the lock and reads outside it.
type Multi struct {
	mu     sync.RWMutex
	parts  []*Graph
	gidOff []int // affinity group index offset per part
	ops    map[string]bool
}

// NewMulti builds a composite view over the given parts.
func NewMulti(parts ...*Graph) (*Multi, error) {
	m := &Multi{ops: make(map[string]bool)}
	for _, g := range parts {
		if err := m.Add(g); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Add appends a part. It validates the part in isolation and rejects
// operator names already present in the composite; on error the Multi is
// unchanged.
func (m *Multi) Add(g *Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.parts {
		if p == g {
			return fmt.Errorf("graph: part already added")
		}
	}
	for _, op := range g.Operators() {
		if m.ops[op.Name] {
			return fmt.Errorf("graph: duplicate operator name %q across parts", op.Name)
		}
	}
	off := 0
	if n := len(m.parts); n > 0 {
		off = m.gidOff[n-1] + len(m.parts[n-1].AffinityGroups())
	}
	for _, op := range g.Operators() {
		m.ops[op.Name] = true
	}
	m.parts = append(m.parts, g)
	m.gidOff = append(m.gidOff, off)
	return nil
}

// Parts returns a snapshot of the composed graphs.
func (m *Multi) Parts() []*Graph {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]*Graph(nil), m.parts...)
}

// snapshot returns the parts and offsets without copying, safe to iterate
// because Add only appends and slices are replaced wholesale.
func (m *Multi) snapshot() ([]*Graph, []int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.parts, m.gidOff
}

// Operators implements View.
func (m *Multi) Operators() []*operator.Spec {
	parts, _ := m.snapshot()
	var out []*operator.Spec
	for _, g := range parts {
		out = append(out, g.Operators()...)
	}
	return out
}

// Streams implements View.
func (m *Multi) Streams() []*StreamSpec {
	parts, _ := m.snapshot()
	var out []*StreamSpec
	for _, g := range parts {
		out = append(out, g.Streams()...)
	}
	return out
}

// Readers implements View.
func (m *Multi) Readers(id stream.ID) []string {
	parts, _ := m.snapshot()
	var out []string
	for _, g := range parts {
		out = append(out, g.Readers(id)...)
	}
	return out
}

// Writer implements View.
func (m *Multi) Writer(id stream.ID) (string, bool) {
	parts, _ := m.snapshot()
	for _, g := range parts {
		if w, ok := g.Writer(id); ok {
			return w, true
		}
	}
	return "", false
}

// AffinityOf implements View; group indices are offset per part so groups
// of different parts never merge.
func (m *Multi) AffinityOf(op string) (int, bool) {
	parts, offs := m.snapshot()
	for i, g := range parts {
		if gid, ok := g.AffinityOf(op); ok {
			return offs[i] + gid, true
		}
	}
	return 0, false
}

// DeadlineFeeds implements View.
func (m *Multi) DeadlineFeeds() []DeadlineFeed {
	parts, _ := m.snapshot()
	var out []DeadlineFeed
	for _, g := range parts {
		out = append(out, g.DeadlineFeeds()...)
	}
	return out
}

// Validate implements View: each part must validate, and Add already
// enforced cross-part uniqueness.
func (m *Multi) Validate() error {
	parts, _ := m.snapshot()
	for _, g := range parts {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}
