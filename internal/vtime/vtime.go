// Package vtime provides a discrete-event virtual clock. The driving
// experiments run the AV pipeline in virtual time — mirroring Pylot's
// pseudo-asynchronous mode (Appendix A.5 of the paper) — so a 50 km drive
// that takes ~1 month of wall-clock simulation in CARLA reproduces here in
// milliseconds, deterministically.
//
// The Engine keeps a priority queue of scheduled events; Run executes them
// in time order, each possibly scheduling further events. The engine also
// implements deadline.Clock, so the same deadline-enforcement machinery that
// runs on the wall clock in production runs on virtual time in simulation.
package vtime

import (
	"container/heap"
	"time"

	"github.com/erdos-go/erdos/internal/core/deadline"
)

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all events execute on the caller's goroutine inside Run.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	epoch  time.Time
}

// New returns an engine positioned at virtual time zero.
func New() *Engine {
	// A fixed epoch anchors time.Time conversions for deadline.Clock.
	return &Engine{epoch: time.Unix(1_000_000_000, 0)}
}

// Now returns the current virtual time as an offset from the start.
func (e *Engine) Now() time.Duration { return e.now }

// NowTime returns the current virtual time as a time.Time (deadline.Clock).
func (e *Engine) NowTime() time.Time { return e.epoch.Add(e.now) }

// At schedules fn at absolute virtual time t (>= Now; earlier times are
// clamped to Now).
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, fn: fn, seq: e.seq}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn after d elapses.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Every schedules fn every period, starting at start, until fn returns
// false.
func (e *Engine) Every(start, period time.Duration, fn func() bool) {
	var tick func()
	next := start
	tick = func() {
		if !fn() {
			return
		}
		next += period
		e.At(next, tick)
	}
	e.At(start, tick)
}

// Run executes events until the queue empties or the optional horizon is
// passed (zero horizon means no limit). It returns the final virtual time.
func (e *Engine) Run(horizon time.Duration) time.Duration {
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if horizon > 0 && ev.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.done = true
		ev.fn()
	}
	if horizon > 0 && e.now < horizon {
		e.now = horizon
	}
	return e.now
}

// Step executes the single next event, reporting whether one existed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.done = true
		ev.fn()
		return true
	}
	return false
}

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Event is a scheduled callback.
type Event struct {
	at        time.Duration
	fn        func()
	seq       uint64
	idx       int
	cancelled bool
	done      bool
}

// Cancel prevents the event from running (no-op if it already ran).
func (ev *Event) Cancel() { ev.cancelled = true }

// At returns the event's scheduled virtual time.
func (ev *Event) At() time.Duration { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *eventHeap) Push(x any)   { ev := x.(*Event); ev.idx = len(*h); *h = append(*h, ev) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Clock adapts an Engine to the deadline.Clock interface so deadline
// enforcement can be driven by virtual time.
type Clock struct{ E *Engine }

// Now implements deadline.Clock.
func (c Clock) Now() time.Time { return c.E.NowTime() }

// AfterFunc implements deadline.Clock.
func (c Clock) AfterFunc(d time.Duration, f func()) deadline.TimerHandle {
	return Timer{ev: c.E.After(d, f)}
}

// Timer wraps a scheduled event as a deadline.TimerHandle.
type Timer struct{ ev *Event }

// Stop implements deadline.TimerHandle.
func (t Timer) Stop() bool {
	if t.ev.cancelled || t.ev.done {
		return false
	}
	t.ev.Cancel()
	return true
}
