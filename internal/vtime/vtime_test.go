package vtime

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.After(30*time.Millisecond, func() { order = append(order, 3) })
	e.After(10*time.Millisecond, func() { order = append(order, 1) })
	e.After(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(10*time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEventsScheduleMoreEvents(t *testing.T) {
	e := New()
	hits := 0
	var tick func()
	tick = func() {
		hits++
		if hits < 5 {
			e.After(10*time.Millisecond, tick)
		}
	}
	e.After(10*time.Millisecond, tick)
	e.Run(0)
	if hits != 5 {
		t.Fatalf("hits = %d", hits)
	}
	if e.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	e := New()
	ran := false
	e.At(100*time.Millisecond, func() { ran = true })
	e.Run(50 * time.Millisecond)
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if e.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
	// Resuming past the horizon runs it.
	e.Run(200 * time.Millisecond)
	if !ran {
		t.Fatal("event not run after extending the horizon")
	}
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.After(10*time.Millisecond, func() { ran = true })
	ev.Cancel()
	e.Run(0)
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	hits := 0
	e.Every(10*time.Millisecond, 20*time.Millisecond, func() bool {
		hits++
		return hits < 4
	})
	e.Run(0)
	if hits != 4 {
		t.Fatalf("hits = %d", hits)
	}
	if e.Now() != 70*time.Millisecond { // 10, 30, 50, 70
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestStep(t *testing.T) {
	e := New()
	n := 0
	e.After(time.Millisecond, func() { n++ })
	e.After(2*time.Millisecond, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty engine must return false")
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New()
	e.After(10*time.Millisecond, func() {
		// Scheduling in the past clamps to now.
		e.At(time.Millisecond, func() {
			if e.Now() != 10*time.Millisecond {
				t.Errorf("clamped event ran at %v", e.Now())
			}
		})
	})
	e.Run(0)
}

func TestClockAdapter(t *testing.T) {
	e := New()
	c := Clock{E: e}
	fired := false
	h := c.AfterFunc(5*time.Millisecond, func() { fired = true })
	if c.Now() != e.NowTime() {
		t.Fatal("clock time mismatch")
	}
	e.Run(10 * time.Millisecond)
	if !fired {
		t.Fatal("AfterFunc did not fire")
	}
	if h.Stop() {
		t.Fatal("Stop after firing must return false")
	}

	h2 := c.AfterFunc(5*time.Millisecond, func() { t.Error("stopped timer fired") })
	if !h2.Stop() {
		t.Fatal("Stop on pending timer must return true")
	}
	e.Run(30 * time.Millisecond)
}
