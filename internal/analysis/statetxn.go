// The statetxn analyzer enforces transactional operator state (§5.3-§5.4):
// everything a callback mutates must live in the state.Store working view
// (ctx.State), because that is all the runtime checkpoints and all that
// RestoreAt can replay after a failure. A callback that writes a captured or
// package-level variable — or calls a pointer-receiver method on one —
// smuggles state past the transaction: after recovery the replayed inputs
// re-apply onto stale values and exactly-once breaks.
package analysis

import (
	"go/ast"
	"go/types"
)

// StateTxn flags callback mutations that bypass the state.Store view.
var StateTxn = &Analyzer{
	Name: "statetxn",
	Doc:  "operator callbacks mutate state only through the state.Store view (ctx.State)",
	Run:  runStateTxn,
}

// mutationExemptPkgs hold types whose pointer-receiver methods are
// synchronization, not state: calling them from a callback is fine.
var mutationExemptPkgs = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
}

func runStateTxn(pass *Pass) error {
	info := pass.Pkg.Info
	for _, r := range callbackRoots(pass) {
		node := r.node
		local := func(obj types.Object) bool {
			return obj.Pos() != 0 && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
		}
		flagVar := func(obj types.Object) *types.Var {
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() || local(v) {
				return nil
			}
			return v
		}
		ast.Inspect(r.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					_, obj := lvalueBase(info, lhs)
					if obj == nil {
						continue
					}
					if v := flagVar(obj); v != nil {
						pass.Reportf(lhs.Pos(),
							"%s writes %q, which outlives the invocation; operator state must live in the state.Store view (ctx.State) so RestoreAt replays it exactly once",
							r.desc, v.Name())
					}
				}
			case *ast.IncDecStmt:
				_, obj := lvalueBase(info, n.X)
				if obj != nil {
					if v := flagVar(obj); v != nil {
						pass.Reportf(n.Pos(),
							"%s writes %q, which outlives the invocation; operator state must live in the state.Store view (ctx.State) so RestoreAt replays it exactly once",
							r.desc, v.Name())
					}
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || mutationExemptPkgs[fn.Pkg().Path()] {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				rt := sig.Recv().Type()
				// Interface dispatch is opaque; only concrete pointer
				// receivers provably mutate.
				if types.IsInterface(rt) {
					return true
				}
				if _, isPtr := rt.(*types.Pointer); !isPtr {
					return true
				}
				_, obj := lvalueBase(info, sel.X)
				if obj == nil {
					return true
				}
				if v := flagVar(obj); v != nil {
					pass.Reportf(n.Pos(),
						"%s calls %s on captured %q: a pointer receiver mutates state outside the store; move the value into the operator's state.Store view",
						r.desc, fn.Name(), v.Name())
				}
			}
			return true
		})
	}
	return nil
}

// lvalueBase resolves the variable that owns an lvalue or receiver chain:
// the base identifier for x.f[i].g, or the selected package-level variable
// for pkg.Var.f. Chains rooted in calls or literals resolve to nil.
func lvalueBase(info *types.Info, e ast.Expr) (*ast.Ident, types.Object) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, info.ObjectOf(x)
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return x.Sel, info.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, nil
		}
	}
}
