// The generic forward dataflow solver: a worklist fixpoint over block-entry
// states, plus a deterministic replay pass for reporting. Clients supply the
// lattice (Entry/Clone/Join) and the semantics (Transfer); states must have
// finite join height or the fixpoint will not terminate.
package flow

import "go/ast"

// Problem defines one forward dataflow problem over a CFG.
type Problem[S any] struct {
	// Entry returns the state at function entry.
	Entry func() S
	// Clone deep-copies a state; the solver never aliases states across
	// blocks.
	Clone func(S) S
	// Join merges src into dst, reporting whether dst changed. Join must
	// be monotone: repeated joins of the same src eventually stop
	// reporting change.
	Join func(dst, src S) bool
	// Transfer folds one event into the state and returns it; mutating s
	// in place and returning it is fine.
	Transfer func(s S, n ast.Node) S
}

// Result carries the fixpoint: the state at entry to each block, and which
// blocks are reachable from Entry at all.
type Result[S any] struct {
	cfg *CFG
	// In[i] is the solved entry state of Blocks[i]; meaningful only where
	// Reached[i].
	In      []S
	Reached []bool
}

// Solve runs the worklist fixpoint and returns per-block entry states.
func Solve[S any](cfg *CFG, p Problem[S]) *Result[S] {
	r := &Result[S]{
		cfg:     cfg,
		In:      make([]S, len(cfg.Blocks)),
		Reached: make([]bool, len(cfg.Blocks)),
	}
	r.In[cfg.Entry.Index] = p.Entry()
	r.Reached[cfg.Entry.Index] = true

	work := []*Block{cfg.Entry}
	queued := make([]bool, len(cfg.Blocks))
	queued[cfg.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		s := p.Clone(r.In[b.Index])
		for _, n := range b.Nodes {
			s = p.Transfer(s, n)
		}
		for _, succ := range b.Succs {
			changed := false
			if !r.Reached[succ.Index] {
				r.Reached[succ.Index] = true
				r.In[succ.Index] = p.Clone(s)
				changed = true
			} else if p.Join(r.In[succ.Index], s) {
				changed = true
			}
			if changed && !queued[succ.Index] {
				queued[succ.Index] = true
				work = append(work, succ)
			}
		}
	}
	return r
}

// Visit replays every reached block from its solved entry state, calling fn
// with each event and the state in force immediately before it. Blocks are
// visited in index order, so diagnostics come out deterministically; fn
// must not retain s past the call.
func (r *Result[S]) Visit(p Problem[S], fn func(n ast.Node, s S)) {
	for i, b := range r.cfg.Blocks {
		if !r.Reached[i] {
			continue
		}
		s := p.Clone(r.In[i])
		for _, n := range b.Nodes {
			fn(n, s)
			s = p.Transfer(s, n)
		}
	}
}
