// Package flow builds per-function control-flow graphs from go/ast and
// solves forward dataflow problems over them. It is the shared engine under
// the path-sensitive erdos-vet analyzers (lockhold, bufown, goleak): a
// single-pass AST walk cannot see a pooled buffer leaking on an early
// return or a lock held into one branch of an if, so those analyzers walk
// the CFG with an abstract state instead.
//
// The graph is deliberately small: a Block is a straight-line sequence of
// *events* — simple statements, condition expressions, and a few compound
// markers — and control constructs (if/for/range/switch/select, labeled
// break and continue, early returns) are decomposed into edges. Function
// literals are not descended into: they execute at another time, usually
// on another goroutine, so each literal is its own CFG.
//
// Event kinds a client's Transfer/Visit sees:
//
//   - plain statements: assignments, declarations, sends, IncDec, defer,
//     go, expression statements;
//   - bare expressions: if/for conditions, switch tags and case lists
//     (evaluated in their clause's block);
//   - *ast.ReturnStmt: every path into Exit passes one — falling off the
//     end of the body is materialized as a synthetic ReturnStmt positioned
//     at the closing brace;
//   - *ast.RangeStmt: the range header (X plus the key/value binding);
//     the body statements are events of the successor block;
//   - *ast.SelectStmt: a marker for the select itself; each clause is an
//     *ast.CommClause event (carrying its comm operation) at the head of
//     that clause's block.
//
// panic(...) and os.Exit(...) terminate their path without reaching Exit;
// goto (absent from this module) conservatively edges to Exit.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of events with its successor edges.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes are the block's events in execution order.
	Nodes []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	// Entry is the block control enters at.
	Entry *Block
	// Exit is the synthetic block every return edges to. It has no events.
	Exit *Block
}

// frame is one enclosing breakable construct on the builder's stack.
type frame struct {
	label string
	brk   *Block // break target
	cont  *Block // continue target; nil for switch/select
}

type builder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator makes
	// the following code unreachable.
	cur          *Block
	frames       []*frame
	fallTarget   *Block
	pendingLabel string
}

// New builds the CFG of one function body.
func New(body *ast.BlockStmt) *CFG {
	cfg := &CFG{}
	b := &builder{cfg: cfg}
	cfg.Entry = b.newBlock()
	cfg.Exit = b.newBlock()
	b.cur = cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		// Falling off the end is an implicit return; materialize it so
		// clients check exit conditions at ReturnStmt events only.
		b.emit(&ast.ReturnStmt{Return: body.Rbrace})
		b.edge(b.cur, cfg.Exit)
	}
	return cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge adds from→to; a nil from (unreachable path) is a no-op.
func (b *builder) edge(from, to *Block) {
	if from != nil && to != nil {
		from.Succs = append(from.Succs, to)
	}
}

// reach returns the current block, materializing an unreachable one after a
// terminator so building can continue.
func (b *builder) reach() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) emit(n ast.Node) {
	b.reach().Nodes = append(b.cur.Nodes, n)
}

func (b *builder) pushFrame(brk, cont *Block) {
	b.frames = append(b.frames, &frame{label: b.pendingLabel, brk: brk, cont: cont})
	b.pendingLabel = ""
}

func (b *builder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// findFrame resolves a break/continue target: the innermost suitable frame,
// or the one carrying the label.
func (b *builder) findFrame(label *ast.Ident, needCont bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		if s.Post != nil {
			post := b.newBlock()
			b.cur = post
			b.emit(s.Post)
			b.edge(post, head)
			cont = post
		}
		b.pushFrame(after, cont)
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		b.edge(b.cur, cont)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.emit(s)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.pushFrame(after, head)
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchClauses(s.Body.List, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.switchClauses(s.Body.List, false)

	case *ast.SelectStmt:
		b.emit(s)
		head := b.cur
		after := b.newBlock()
		b.pushFrame(after, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.emit(cc)
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.popFrame()
		// A clause-less select{} parks forever; after then has no
		// predecessors and stays unreachable, as it should.
		b.cur = after

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.edge(b.cur, f.brk)
			}
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.edge(b.cur, f.cont)
			}
		case token.FALLTHROUGH:
			b.edge(b.cur, b.fallTarget)
		case token.GOTO:
			// Not used in this module; end the path conservatively.
			b.emit(s)
			b.edge(b.cur, b.cfg.Exit)
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.emit(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.emit(s)
		if isTerminatorCall(s.X) {
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Send, IncDec, Defer, Go, and anything else simple.
		b.emit(s)
	}
}

// switchClauses builds the shared clause structure of switch and type
// switch. The head is the current block; each clause's guard expressions
// are events of its own block.
func (b *builder) switchClauses(list []ast.Stmt, allowFall bool) {
	head := b.reach()
	after := b.newBlock()
	b.pushFrame(after, nil)
	blocks := make([]*Block, len(list))
	hasDefault := false
	for i, c := range list {
		blocks[i] = b.newBlock()
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	savedFall := b.fallTarget
	for i, c := range list {
		cc := c.(*ast.CaseClause)
		b.edge(head, blocks[i])
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.emit(e)
		}
		b.fallTarget = nil
		if allowFall && i+1 < len(list) {
			b.fallTarget = blocks[i+1]
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fallTarget = savedFall
	if !hasDefault {
		b.edge(head, after)
	}
	b.popFrame()
	b.cur = after
}

// isTerminatorCall reports whether the expression statement never returns:
// a panic(...) or os.Exit(...) call. The check is syntactic — flow has no
// type information — which is exact enough for this module, where neither
// name is ever shadowed.
func isTerminatorCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}

// Inspect walks the sub-tree of one event that is not represented by other
// events, skipping nested function literals (each is its own CFG). Compound
// markers expose only their header parts: a RangeStmt its binding and
// operand, a CommClause its comm operation, a SelectStmt nothing (its
// clauses are separate events).
func Inspect(event ast.Node, fn func(ast.Node) bool) {
	switch e := event.(type) {
	case *ast.SelectStmt:
		return
	case *ast.CommClause:
		if e.Comm != nil {
			inspectSkipFunc(e.Comm, fn)
		}
	case *ast.RangeStmt:
		if e.Key != nil {
			inspectSkipFunc(e.Key, fn)
		}
		if e.Value != nil {
			inspectSkipFunc(e.Value, fn)
		}
		inspectSkipFunc(e.X, fn)
	default:
		inspectSkipFunc(event, fn)
	}
}

func inspectSkipFunc(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return fn(m)
	})
}
