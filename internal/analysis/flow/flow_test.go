package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseBody returns the body of the first function declared in src.
func parseBody(t *testing.T, src string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fset, fd.Body
		}
	}
	t.Fatal("no function in src")
	return nil, nil
}

// genKill is a toy ownership problem over untyped syntax: `x := acquire()`
// gens x, `release(x)` kills it. Lines of ReturnStmt events where some
// name may still be live are collected — exercising branches, loops,
// early returns, and the synthetic fall-off-the-end return.
func leakyReturnLines(t *testing.T, src string) []int {
	t.Helper()
	fset, body := parseBody(t, src)
	cfg := New(body)

	type state = map[string]bool
	p := Problem[state]{
		Entry: func() state { return state{} },
		Clone: func(s state) state {
			c := make(state, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		Join: func(dst, src state) bool {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(s state, n ast.Node) state {
			Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				switch id.Name {
				case "release":
					if len(call.Args) == 1 {
						if a, ok := call.Args[0].(*ast.Ident); ok {
							delete(s, a.Name)
						}
					}
				}
				return true
			})
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "acquire" {
						if lhs, ok := as.Lhs[0].(*ast.Ident); ok {
							s[lhs.Name] = true
						}
					}
				}
			}
			return s
		},
	}
	res := Solve(cfg, p)
	var lines []int
	res.Visit(p, func(n ast.Node, s state) {
		if _, ok := n.(*ast.ReturnStmt); ok && len(s) > 0 {
			lines = append(lines, fset.Position(n.Pos()).Line)
		}
	})
	sort.Ints(lines)
	return lines
}

func TestEarlyReturnLeak(t *testing.T) {
	// Line numbering starts at the package clause, so func is line 2.
	lines := leakyReturnLines(t, `
func f(c bool) {
	x := acquire()
	if c {
		return
	}
	release(x)
}`)
	if len(lines) != 1 || lines[0] != 6 {
		t.Fatalf("leaky returns at %v, want [6]", lines)
	}
}

func TestLoopBackEdgeJoins(t *testing.T) {
	// The release happens only on the break path; the loop's fall-through
	// into the synthetic return at the closing brace stays clean because
	// every path out of the loop releases first.
	lines := leakyReturnLines(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		x := acquire()
		if i > 2 {
			release(x)
			break
		}
		release(x)
	}
}`)
	if len(lines) != 0 {
		t.Fatalf("leaky returns at %v, want none", lines)
	}
}

func TestSelectClausePaths(t *testing.T) {
	lines := leakyReturnLines(t, `
func f(ch chan int, done chan bool) {
	x := acquire()
	select {
	case <-ch:
		release(x)
	case <-done:
		return
	}
}`)
	if len(lines) != 1 || lines[0] != 9 {
		t.Fatalf("leaky returns at %v, want [9]", lines)
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	lines := leakyReturnLines(t, `
func f(n int) {
	x := acquire()
	switch n {
	case 1:
		fallthrough
	case 2:
		release(x)
	default:
		release(x)
	}
}`)
	if len(lines) != 0 {
		t.Fatalf("leaky returns at %v, want none", lines)
	}
}

func TestLabeledBreakTarget(t *testing.T) {
	lines := leakyReturnLines(t, `
func f(n int) {
outer:
	for {
		for {
			x := acquire()
			if n > 1 {
				break outer
			}
			release(x)
		}
	}
}`)
	// break outer leaves both loops with x live; the synthetic return at
	// the function's closing brace sees it.
	if len(lines) != 1 || lines[0] != 14 {
		t.Fatalf("leaky returns at %v, want [14]", lines)
	}
}

func TestPanicPathDoesNotReachExit(t *testing.T) {
	lines := leakyReturnLines(t, `
func f(c bool) {
	x := acquire()
	if c {
		panic("boom")
	}
	release(x)
}`)
	if len(lines) != 0 {
		t.Fatalf("leaky returns at %v, want none", lines)
	}
}

func TestSyntheticReturnPosition(t *testing.T) {
	_, body := parseBody(t, `
func f() {
	g()
}`)
	cfg := New(body)
	var synth *ast.ReturnStmt
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok {
				synth = r
			}
		}
	}
	if synth == nil {
		t.Fatal("no synthetic return emitted")
	}
	if synth.Return != body.Rbrace {
		t.Fatalf("synthetic return at %v, want closing brace %v", synth.Return, body.Rbrace)
	}
}

func TestEveryReturnEdgesToExit(t *testing.T) {
	_, body := parseBody(t, `
func f(c bool) int {
	if c {
		return 1
	}
	for i := 0; i < 3; i++ {
		if i == 2 {
			return 2
		}
	}
	return 3
}`)
	cfg := New(body)
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); !ok {
				continue
			}
			if i != len(b.Nodes)-1 {
				t.Fatalf("return is not the last event of block %d", b.Index)
			}
			found := false
			for _, s := range b.Succs {
				if s == cfg.Exit {
					found = true
				}
			}
			if !found {
				t.Fatalf("block %d ends in return but does not edge to Exit", b.Index)
			}
		}
	}
}

func TestInspectSkipsFuncLit(t *testing.T) {
	_, body := parseBody(t, `
func f() {
	g := func() { inner() }
	g()
}`)
	cfg := New(body)
	var calls []string
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			Inspect(n, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok {
						calls = append(calls, id.Name)
					}
				}
				return true
			})
		}
	}
	joined := strings.Join(calls, ",")
	if strings.Contains(joined, "inner") {
		t.Fatalf("Inspect descended into a function literal: %v", calls)
	}
	if !strings.Contains(joined, "g") {
		t.Fatalf("Inspect missed the outer call: %v", calls)
	}
}
