// The deadlinehint analyzer keeps deadline slack visible to the transport:
// (*comm.Transport).Send flushes with a zero hint, so the write-side
// coalescer (PR 2) cannot batch around the caller's deadline. Hot-path code
// must call SendWithHint — with an explicit zero comm.FlushHint when no
// deadline genuinely applies — so every flush decision is deliberate.
package analysis

import "go/ast"

// DeadlineHint flags unhinted Transport.Send calls.
var DeadlineHint = &Analyzer{
	Name: "deadlinehint",
	Doc:  "transport sends must carry a flush hint (SendWithHint) so coalescing sees deadline slack",
	Run:  runDeadlineHint,
}

func runDeadlineHint(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == commPkgPath && fn.Name() == "Send" && recvTypeName(fn) == "Transport" {
				pass.Reportf(call.Pos(),
					"(*comm.Transport).Send flushes with zero slack; use SendWithHint (pass comm.FlushHint{} if no deadline applies) so the coalescer can batch")
			}
			return true
		})
	}
	return nil
}
