// The deadlinehint analyzer keeps deadline slack visible to the runtime's
// two scheduling surfaces. On the wire, (*comm.Transport).Send flushes with
// a zero hint, so the write-side coalescer (PR 2) cannot batch around the
// caller's deadline: hot-path code must call SendWithHint — with an explicit
// zero comm.FlushHint when no deadline genuinely applies — so every flush
// decision is deliberate. The same applies to fanout: Multicast flushes
// every shared-frame copy with zero slack, so callers must use
// MulticastWithHint (or MulticastBus, which is always hinted), and to
// relay republish: Republish drops the envelope's remaining slack on the
// floor, so relay code must call RepublishWithHint to propagate it across
// the republish hop. On the run queues, (*lattice.Lattice).Submit
// enqueues with no deadline, so EDF dispatch treats the callback as
// infinitely slack and a congested shard will starve it last: runtime code
// must call SubmitDeadline — passing lattice.NoDeadline when the operator
// really has no budget — so every enqueue states its urgency.
//
// The transport backend seam adds a third surface: comm.FrameSink is the
// byte sink the coalescer flushes into, and comm.BufferedConn.FrameBuffers
// hands out a connection's sink directly. Code outside comm that writes or
// flushes through either one has stepped below the seam — its bytes bypass
// the deadline-aware coalescer entirely, so no hint can ever reach them.
// Such sends must go through (*comm.Transport).SendWithHint instead.
package analysis

import "go/ast"

// DeadlineHint flags unhinted Transport.Send and Lattice.Submit calls.
var DeadlineHint = &Analyzer{
	Name: "deadlinehint",
	Doc:  "transport sends must carry a flush hint (SendWithHint) and lattice enqueues a deadline (SubmitDeadline) so scheduling sees deadline slack",
	Run:  runDeadlineHint,
}

func runDeadlineHint(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == commPkgPath && fn.Name() == "Send" && recvTypeName(fn) == "Transport" {
				pass.Reportf(call.Pos(),
					"(*comm.Transport).Send flushes with zero slack; use SendWithHint (pass comm.FlushHint{} if no deadline applies) so the coalescer can batch")
			}
			if fn.Pkg().Path() == commPkgPath && fn.Name() == "Multicast" && recvTypeName(fn) == "Transport" {
				pass.Reportf(call.Pos(),
					"(*comm.Transport).Multicast flushes every copy with zero slack; use MulticastWithHint or MulticastBus (pass comm.FlushHint{} if no deadline applies) so the coalescer can batch the fanout")
			}
			if fn.Pkg().Path() == commPkgPath && fn.Name() == "Republish" && recvTypeName(fn) == "Transport" {
				pass.Reportf(call.Pos(),
					"(*comm.Transport).Republish discards the relay envelope's remaining slack; use RepublishWithHint so the producer's deadline survives the republish hop")
			}
			if fn.Pkg().Path() == latticePkgPath && fn.Name() == "Submit" && recvTypeName(fn) == "Lattice" {
				pass.Reportf(call.Pos(),
					"(*lattice.Lattice).Submit enqueues with no deadline; use SubmitDeadline (pass lattice.NoDeadline if no budget applies) so EDF dispatch sees the urgency")
			}
			// Seam surface: key on the receiver expression's static type,
			// not the resolved method — FrameSink's Write and WriteByte
			// resolve to the embedded io interfaces, which would slip past
			// a declared-on check.
			if pass.Pkg.Path != commPkgPath {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if tn := namedTypeName(typeOf(info, sel.X)); tn != nil && tn.Pkg() != nil && tn.Pkg().Path() == commPkgPath {
						switch {
						case tn.Name() == "FrameSink":
							pass.Reportf(call.Pos(),
								"comm.FrameSink write below the transport seam bypasses the deadline-aware coalescer; send through (*comm.Transport).SendWithHint so flush decisions see deadline slack")
						case tn.Name() == "BufferedConn" && sel.Sel.Name == "FrameBuffers":
							pass.Reportf(call.Pos(),
								"comm.BufferedConn.FrameBuffers outside comm exposes the below-seam byte sink; send through (*comm.Transport).SendWithHint so flush decisions see deadline slack")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
