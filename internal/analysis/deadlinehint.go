// The deadlinehint analyzer keeps deadline slack visible to the runtime's
// two scheduling surfaces. On the wire, (*comm.Transport).Send flushes with
// a zero hint, so the write-side coalescer (PR 2) cannot batch around the
// caller's deadline: hot-path code must call SendWithHint — with an explicit
// zero comm.FlushHint when no deadline genuinely applies — so every flush
// decision is deliberate. On the run queues, (*lattice.Lattice).Submit
// enqueues with no deadline, so EDF dispatch treats the callback as
// infinitely slack and a congested shard will starve it last: runtime code
// must call SubmitDeadline — passing lattice.NoDeadline when the operator
// really has no budget — so every enqueue states its urgency.
package analysis

import "go/ast"

// DeadlineHint flags unhinted Transport.Send and Lattice.Submit calls.
var DeadlineHint = &Analyzer{
	Name: "deadlinehint",
	Doc:  "transport sends must carry a flush hint (SendWithHint) and lattice enqueues a deadline (SubmitDeadline) so scheduling sees deadline slack",
	Run:  runDeadlineHint,
}

func runDeadlineHint(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == commPkgPath && fn.Name() == "Send" && recvTypeName(fn) == "Transport" {
				pass.Reportf(call.Pos(),
					"(*comm.Transport).Send flushes with zero slack; use SendWithHint (pass comm.FlushHint{} if no deadline applies) so the coalescer can batch")
			}
			if fn.Pkg().Path() == latticePkgPath && fn.Name() == "Submit" && recvTypeName(fn) == "Lattice" {
				pass.Reportf(call.Pos(),
					"(*lattice.Lattice).Submit enqueues with no deadline; use SubmitDeadline (pass lattice.NoDeadline if no budget applies) so EDF dispatch sees the urgency")
			}
			return true
		})
	}
	return nil
}
