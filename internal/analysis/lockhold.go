// The lockhold analyzer keeps critical sections non-blocking. The lattice
// shard queues, the transport's COW peer/codec tables, and the cluster
// forwarding state are all guarded by mutexes on the hot path; a blocking
// call — channel op, transport send, net or gob I/O, sleep — made while one
// is held turns a lock-free-in-spirit section into a convoy (and, when the
// blocked operation needs the same lock to drain, a deadlock). The analysis
// is syntactic and per-function: a lock interval runs from X.Lock() to the
// earliest matching X.Unlock() on the same receiver chain, or to function
// end when the unlock is deferred; sync.Cond.Wait is exempt because it
// releases its mutex while parked.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHold flags blocking calls made while a mutex is held.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking calls (sends, channel ops, net/gob I/O, sleeps) while holding a mutex",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lockholdScope(pass, n.Body)
				}
			case *ast.FuncLit:
				lockholdScope(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

type lockEvent struct {
	key      string
	pos      token.Pos
	unlock   bool
	deferred bool
}

type blockEvent struct {
	pos  token.Pos
	desc string
}

type posRange struct{ from, to token.Pos }

// lockholdScope analyzes one function body. Nested function literals are
// separate scopes (they run at a different time, typically on another
// goroutine) and are skipped here; the outer Inspect visits them on their
// own.
func lockholdScope(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var locks []lockEvent
	var blockers []blockEvent
	var consumed []posRange

	inRange := func(p token.Pos) bool {
		for _, r := range consumed {
			if r.from <= p && p <= r.to {
				return true
			}
		}
		return false
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false
			}
		case *ast.DeferStmt:
			if key, unlock := lockCall(info, n.Call); unlock {
				locks = append(locks, lockEvent{key: key, pos: n.Pos(), unlock: true, deferred: true})
			}
			// Deferred work runs at return; it cannot block the section.
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					hasDefault = true
				} else {
					consumed = append(consumed, posRange{cc.Comm.Pos(), cc.Comm.End()})
				}
			}
			if !hasDefault {
				blockers = append(blockers, blockEvent{n.Pos(), "select without default"})
			}
		case *ast.SendStmt:
			if !inRange(n.Pos()) {
				blockers = append(blockers, blockEvent{n.Pos(), "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inRange(n.Pos()) {
				blockers = append(blockers, blockEvent{n.Pos(), "channel receive"})
			}
		case *ast.RangeStmt:
			if t := typeOf(info, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					blockers = append(blockers, blockEvent{n.Pos(), "range over channel"})
				}
			}
		case *ast.CallExpr:
			if key, unlock := lockCall(info, n); key != "" {
				locks = append(locks, lockEvent{key: key, pos: n.Pos(), unlock: unlock})
			} else if desc, ok := blockingCall(info, n); ok {
				blockers = append(blockers, blockEvent{n.Pos(), desc})
			}
		}
		return true
	}
	// Select clauses register their comm ranges before the clause bodies are
	// visited, because Inspect is pre-order; in-clause sends/receives are the
	// select's own and must not double-report.
	ast.Inspect(body, walk)

	sort.Slice(locks, func(i, j int) bool { return locks[i].pos < locks[j].pos })
	type interval struct {
		key      string
		from, to token.Pos
	}
	var held []interval
	for i, l := range locks {
		if l.unlock {
			continue
		}
		end := body.End()
		found := false
		for j := i + 1; j < len(locks); j++ {
			u := locks[j]
			if u.unlock && !u.deferred && u.key == l.key {
				end = u.pos
				found = true
				break
			}
		}
		if !found {
			// No inline unlock: held to function end (deferred or leaked).
			end = body.End()
		}
		held = append(held, interval{key: l.key, from: l.pos, to: end})
	}

	sort.Slice(blockers, func(i, j int) bool { return blockers[i].pos < blockers[j].pos })
	for _, b := range blockers {
		for _, iv := range held {
			if iv.from < b.pos && b.pos < iv.to {
				pass.Reportf(b.pos,
					"blocking %s while holding %s (locked at line %d); copy out under the lock and do the blocking work after unlock",
					b.desc, iv.key, pass.Fset.Position(iv.from).Line)
				break
			}
		}
	}
}

// lockCall classifies a call as a mutex acquire or release, returning the
// textual key of the receiver chain ("t.mu") and whether it releases.
// Non-lock calls return key "".
func lockCall(info *types.Info, call *ast.CallExpr) (key string, unlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), false
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), true
	}
	return "", false
}

// blockingCall reports whether a call belongs to the blocking set and
// describes it. Calls through function values are not classified: the
// analysis is intentionally first-order.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg, name, recv := fn.Pkg().Path(), fn.Name(), recvTypeName(fn)
	switch {
	case pkg == "time" && recv == "" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "sync" && recv == "WaitGroup" && name == "Wait":
		return "sync.WaitGroup.Wait", true
	case pkg == "net" && recv == "" &&
		(strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
		return "net." + name, true
	case pkg == "net" && name == "Accept":
		return "net listener Accept", true
	case pkg == "net" && (name == "Read" || name == "Write" || name == "ReadFrom" || name == "WriteTo"):
		return "net connection I/O", true
	case pkg == commPkgPath && recv == "Transport" &&
		(name == "Send" || name == "SendWithHint" || name == "SendRelease" ||
			name == "Dial" || name == "DialBackoff"):
		return "comm.Transport." + name, true
	case pkg == "encoding/gob" && (name == "Encode" || name == "Decode"):
		return "gob " + name + " (stream I/O)", true
	case pkg == "bufio" && recv == "Writer" && name == "Flush":
		return "bufio.Writer.Flush", true
	}
	return "", false
}
