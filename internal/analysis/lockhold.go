// The lockhold analyzer keeps critical sections non-blocking. The lattice
// shard queues, the transport's COW peer/codec tables, and the cluster
// forwarding state are all guarded by mutexes on the hot path; a blocking
// call — channel op, transport send, net or gob I/O, sleep — made while one
// is held turns a lock-free-in-spirit section into a convoy (and, when the
// blocked operation needs the same lock to drain, a deadlock).
//
// The analysis runs on the shared CFG engine (internal/analysis/flow): the
// abstract state is the set of may-held locks, keyed by the receiver
// chain's expression text ("t.mu"), each carrying its acquire position.
// Lock/RLock adds a key, an inline Unlock/RUnlock removes it, and a
// deferred unlock removes nothing — the section runs to function end. Path
// sensitivity means a lock released on one branch but not the other is
// still held at the join, unlike the old syntactic interval scan, which
// only saw the earliest textual unlock. sync.Cond.Wait is exempt because
// it releases its mutex while parked; defer and go statements cannot block
// the section (they run at another time), so their bodies are not scanned.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/erdos-go/erdos/internal/analysis/flow"
)

// LockHold flags blocking calls made while a mutex is held.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking calls (sends, channel ops, net/gob I/O, sleeps) while holding a mutex",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lockholdScope(pass, n.Body)
				}
			case *ast.FuncLit:
				// A nested literal is another goroutine's scope; it gets
				// its own CFG with an empty entry state.
				lockholdScope(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// lockState maps a held lock's receiver-chain key to its acquire position.
type lockState map[string]token.Pos

// lockholdProblem is the dataflow problem for one function body.
func lockholdProblem(info *types.Info) flow.Problem[lockState] {
	return flow.Problem[lockState]{
		Entry: func() lockState { return lockState{} },
		Clone: func(s lockState) lockState {
			c := make(lockState, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		// May-held union: a lock held on any incoming path counts as held.
		// On conflict the earliest acquire position wins, keeping the
		// reported line stable.
		Join: func(dst, src lockState) bool {
			changed := false
			for k, v := range src {
				if old, ok := dst[k]; !ok || v < old {
					dst[k] = v
					changed = true
				}
			}
			return changed
		},
		Transfer: func(s lockState, n ast.Node) lockState {
			switch n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// Deferred unlocks release only at return; the section
				// stays hot until function end. Goroutine bodies are
				// separate scopes.
				return s
			}
			flow.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if key, unlock := lockCall(info, call); key != "" {
						if unlock {
							delete(s, key)
						} else {
							s[key] = call.Pos()
						}
					}
				}
				return true
			})
			return s
		},
	}
}

func lockholdScope(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	cfg := flow.New(body)
	p := lockholdProblem(info)
	res := flow.Solve(cfg, p)

	report := func(pos token.Pos, desc string, s lockState) {
		// Pick the earliest-acquired held lock so the message is stable
		// across join orders.
		var key string
		var at token.Pos
		for k, v := range s {
			if key == "" || v < at {
				key, at = k, v
			}
		}
		if key == "" {
			return
		}
		pass.Reportf(pos,
			"blocking %s while holding %s (locked at line %d); copy out under the lock and do the blocking work after unlock",
			desc, key, pass.Fset.Position(at).Line)
	}

	res.Visit(p, func(n ast.Node, s lockState) {
		if len(s) == 0 {
			return
		}
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			// Runs at another time; cannot block this section.
			return
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				report(n.Pos(), "select without default", s)
			}
			return
		case *ast.CommClause:
			// The clause's comm op is the select's own; the header event
			// already accounted for it.
			return
		case *ast.RangeStmt:
			if t := typeOf(info, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n.Pos(), "range over channel", s)
				}
			}
			return
		}
		flow.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SendStmt:
				report(m.Pos(), "channel send", s)
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					report(m.Pos(), "channel receive", s)
				}
			case *ast.CallExpr:
				if desc, ok := blockingCall(info, m); ok {
					report(m.Pos(), desc, s)
				}
			}
			return true
		})
	})
}

// lockCall classifies a call as a mutex acquire or release, returning the
// textual key of the receiver chain ("t.mu") and whether it releases.
// Non-lock calls return key "".
func lockCall(info *types.Info, call *ast.CallExpr) (key string, unlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), false
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), true
	}
	return "", false
}

// blockingCall reports whether a call belongs to the blocking set and
// describes it. Calls through function values are not classified: the
// analysis is intentionally first-order.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg, name, recv := fn.Pkg().Path(), fn.Name(), recvTypeName(fn)
	switch {
	case pkg == "time" && recv == "" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "sync" && recv == "WaitGroup" && name == "Wait":
		return "sync.WaitGroup.Wait", true
	case pkg == "net" && recv == "" &&
		(strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
		return "net." + name, true
	case pkg == "net" && name == "Accept":
		return "net listener Accept", true
	case pkg == "net" && (name == "Read" || name == "Write" || name == "ReadFrom" || name == "WriteTo"):
		return "net connection I/O", true
	case pkg == commPkgPath && recv == "Transport" &&
		(name == "Send" || name == "SendWithHint" || name == "SendRelease" ||
			name == "Dial" || name == "DialBackoff"):
		return "comm.Transport." + name, true
	case pkg == "encoding/gob" && (name == "Encode" || name == "Decode"):
		return "gob " + name + " (stream I/O)", true
	case pkg == "bufio" && recv == "Writer" && name == "Flush":
		return "bufio.Writer.Flush", true
	}
	return "", false
}
