// The wallclock analyzer guards replay determinism: operator callbacks,
// deadline exception handlers, and the fault/recovery machinery must not
// read the wall clock or the global math/rand source. A chaos run replays a
// seeded schedule; one stray time.Now() in a callback and two runs of the
// same seed diverge. Timing must come from message timestamps, the injected
// deadline.Clock, or schedule-relative offsets.
//
// Scope: every function in a deterministic-domain package — the fault
// schedule (internal/core/faults), operator state (internal/core/state), or
// any package carrying an //erdos:deterministic comment — plus, in every
// other package, the operator-callback roots and the same-package helpers
// they reach.
package analysis

import (
	"go/ast"
	"strings"
)

// Wallclock flags wall-clock and global-randomness reads in deterministic
// code paths.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now/time.Sleep/global math/rand in callbacks, DEHs, or replay/fault paths",
	Run:  runWallclock,
}

// bannedTimeFuncs are the package-level time functions that read or wait on
// the wall clock. Timer constructors taking explicit durations (AfterFunc,
// NewTimer) stay legal: the injector arms schedule offsets through them.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Sleep": true,
	"Since": true,
	"Until": true,
	"After": true,
	"Tick":  true,
}

// randExempt are math/rand package-level functions that do not touch the
// global source; explicitly-seeded generators are the deterministic pattern.
var randExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// deterministicPkgs are whole-package deterministic domains.
var deterministicPkgs = map[string]bool{
	faultsPkgPath: true,
	statePkgPath:  true,
	// The autoscale/admission policy is pure arithmetic over congestion
	// scores — clocked or random decisions there would make scale events
	// unreproducible across identical score sequences.
	elasticPkgPath: true,
}

const deterministicDirective = "//erdos:deterministic"

func runWallclock(pass *Pass) error {
	type scope struct {
		body *ast.BlockStmt
		desc string
	}
	var scopes []scope

	if deterministicPkgs[pass.Pkg.Path] || hasDeterministicDirective(pass.Pkg) {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					scopes = append(scopes, scope{fd.Body, "deterministic package " + pass.Pkg.Path})
				}
			}
		}
	} else {
		roots := callbackRoots(pass)
		for _, r := range roots {
			scopes = append(scopes, scope{r.body, r.desc})
		}
		for decl, desc := range reachableDecls(pass, roots) {
			scopes = append(scopes, scope{decl.Body, desc})
		}
	}

	info := pass.Pkg.Info
	for _, s := range scopes {
		ast.Inspect(s.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || recvTypeName(fn) != "" {
				return true
			}
			switch pkg := fn.Pkg().Path(); {
			case pkg == "time" && bannedTimeFuncs[fn.Name()]:
				pass.Reportf(call.Pos(),
					"time.%s in %s: wall-clock reads break seeded replay; use message timestamps, the injected deadline.Clock, or schedule-relative offsets",
					fn.Name(), s.desc)
			case (pkg == "math/rand" || pkg == "math/rand/v2") && !randExempt[fn.Name()]:
				pass.Reportf(call.Pos(),
					"global %s.%s in %s: unseeded randomness breaks seeded replay; thread a seeded *rand.Rand instead",
					pkg, fn.Name(), s.desc)
			}
			return true
		})
	}
	return nil
}

// hasDeterministicDirective reports whether any file opts the whole package
// into the deterministic domain.
func hasDeterministicDirective(pkg *Package) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, deterministicDirective) {
					return true
				}
			}
		}
	}
	return false
}
