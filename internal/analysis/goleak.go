// The goleak analyzer ties every goroutine in the runtime packages to a
// stop signal. The cluster, comm (including shm/inproc backends), worker,
// and lattice packages are long-lived: a worker survives operator churn,
// a transport survives reconnects, an elastic cluster survives membership
// changes. A goroutine spawned there without a reachable stop signal — a
// done channel, a context, a sync.WaitGroup the owner waits on, or a
// sync.Cond — outlives its owner silently. Under elastic scaling
// (join/drain cycles) those orphans accumulate: each drained member leaks
// its loops, and the leak only shows up as monotone goroutine growth in
// long-running benchmarks.
//
// The check is intentionally structural, not temporal: it proves that the
// spawned body (or a same-package function it transitively calls) *can*
// observe a stop signal, not that it always terminates. That is the same
// contract the module's loops follow — sockLoop exits when Close breaks the
// socket AND Close waits on a WaitGroup the loop signals; acceptLoop parks
// in a receive that Close wakes.
//
// Scope is the runtime package set plus any package carrying an
// //erdos:leakcheck comment (how fixtures opt in). Audited fire-and-forget
// sites use //erdos:allow goleak <reason>, and the stale-allow audit keeps
// the annotations honest. Goroutines whose body cannot be resolved
// statically (a function value, a cross-package call) are flagged too:
// spawn a literal or a named same-package function so the analyzer — and
// the reader — can see the loop.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLeak flags goroutines in runtime packages with no reachable stop signal.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every goroutine in the runtime packages (cluster, comm, worker, lattice) observes a stop signal",
	Run:  runGoLeak,
}

// leakcheckDirective opts a package into goleak the way
// //erdos:deterministic opts into wallclock; fixtures use it.
const leakcheckDirective = "//erdos:leakcheck"

// goleakPkgPrefixes are the runtime packages (and their subpackages) whose
// goroutines must be stoppable.
var goleakPkgPrefixes = []string{
	modPath + "/internal/core/cluster",
	modPath + "/internal/core/comm",
	modPath + "/internal/core/worker",
	modPath + "/internal/core/lattice",
}

func goleakInScope(pkg *Package) bool {
	for _, p := range goleakPkgPrefixes {
		if pkg.Path == p || strings.HasPrefix(pkg.Path, p+"/") {
			return true
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, leakcheckDirective) {
					return true
				}
			}
		}
	}
	return false
}

func runGoLeak(pass *Pass) error {
	if !goleakInScope(pass.Pkg) {
		return nil
	}
	g := &goleakPass{
		pass:  pass,
		info:  pass.Pkg.Info,
		decls: packageFuncDecls(pass.Pkg),
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				g.checkSpawn(gs)
			}
			return true
		})
	}
	return nil
}

type goleakPass struct {
	pass  *Pass
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl
}

// checkSpawn verifies one go statement: resolve the spawned body, then
// search it (and its transitive same-package callees) for a stop signal.
func (g *goleakPass) checkSpawn(gs *ast.GoStmt) {
	body, desc := g.spawnBody(gs.Call)
	if body == nil {
		g.pass.Reportf(gs.Pos(),
			"goroutine body (%s) cannot be verified for a stop signal; spawn a function literal or a named same-package function",
			desc)
		return
	}
	if sig := g.findStopSignal(body); sig != "" {
		return
	}
	g.pass.Reportf(gs.Pos(),
		"goroutine (%s) has no reachable stop signal (done channel receive, context, WaitGroup, or Cond); it outlives its owner",
		desc)
}

// spawnBody resolves the body the go statement runs: a function literal, or
// a function/method declared in this package. The description names what
// was spawned for the diagnostic.
func (g *goleakPass) spawnBody(call *ast.CallExpr) (*ast.BlockStmt, string) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, "function literal"
	}
	fn := calleeFunc(g.info, call)
	if fn == nil {
		return nil, "function value"
	}
	if decl, ok := g.decls[fn]; ok && decl.Body != nil {
		return decl.Body, fn.Name()
	}
	if fn.Pkg() != nil && fn.Pkg().Path() != g.pass.Pkg.Path {
		return nil, fn.Pkg().Path() + "." + fn.Name() + " (cross-package)"
	}
	return nil, fn.Name()
}

// findStopSignal searches a body and its transitive same-package callees
// for any construct that observes a stop signal. Nested function literals
// ARE descended into here: the spawned goroutine runs them (deferred or
// called) on its own stack.
func (g *goleakPass) findStopSignal(body *ast.BlockStmt) string {
	visited := map[*ast.BlockStmt]bool{}
	work := []*ast.BlockStmt{body}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		if visited[b] {
			continue
		}
		visited[b] = true
		var found string
		ast.Inspect(b, func(n ast.Node) bool {
			if found != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					found = "channel receive"
				}
			case *ast.RangeStmt:
				if t := typeOf(g.info, n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						found = "range over channel"
					}
				}
			case *ast.CallExpr:
				if sig := g.stopCall(n); sig != "" {
					found = sig
					return false
				}
				if fn := calleeFunc(g.info, n); fn != nil {
					if decl, ok := g.decls[fn]; ok && decl.Body != nil && !visited[decl.Body] {
						work = append(work, decl.Body)
					}
				}
			}
			return true
		})
		if found != "" {
			return found
		}
	}
	return ""
}

// stopCall classifies calls that constitute a stop signal by themselves.
func (g *goleakPass) stopCall(call *ast.CallExpr) string {
	fn := calleeFunc(g.info, call)
	if fn == nil || fn.Pkg() == nil {
		// An interface method: context.Context.Done()/Err() resolve through
		// Uses on the selector instead.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if m, ok := g.info.Uses[sel.Sel].(*types.Func); ok && m.Pkg() != nil &&
				m.Pkg().Path() == "context" && (m.Name() == "Done" || m.Name() == "Err") {
				return "context " + m.Name()
			}
		}
		return ""
	}
	pkg, name, recv := fn.Pkg().Path(), fn.Name(), recvTypeName(fn)
	switch {
	case pkg == "sync" && recv == "WaitGroup" && name == "Done":
		// The owner can wg.Wait() for this goroutine; it is accounted for.
		return "sync.WaitGroup.Done"
	case pkg == "sync" && recv == "Cond" && name == "Wait":
		return "sync.Cond.Wait"
	case pkg == "context" && (name == "Done" || name == "Err"):
		return "context " + name
	}
	return ""
}
