// Package analysis is a small, stdlib-only static-analysis framework plus
// the seven D3-specific analyzers behind cmd/erdos-vet. The runtime's core
// contracts — zero-gob payloads on the wire, deterministic callbacks,
// non-blocking critical sections, transactional operator state,
// deadline-hinted sends, pooled-buffer ownership balance, and stoppable
// goroutines — are invariants the paper treats as system guarantees (§3,
// §4.3); this package makes the build refuse code that breaks them instead
// of hoping a runtime test catches it.
//
// A justified exception is suppressed in place with a reasoned directive:
//
//	//erdos:allow <analyzer> <reason>
//
// on the offending line or the line directly above it. Directives without a
// reason, and directives that no longer suppress anything, are themselves
// diagnostics — the escape hatch stays auditable.
package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"sync"
	"time"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer identifier used in output and allow directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports findings on pass.Pkg via pass.Reportf.
	Run func(*Pass) error
}

// All lists the erdos-vet analyzers in reporting order.
var All = []*Analyzer{ZeroGob, Wallclock, LockHold, StateTxn, DeadlineHint, BufOwn, GoLeak}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	loader   *Loader
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Dep returns the type-checked types for a module-internal dependency, or an
// error when it cannot be loaded. Analyzers use it to look up interfaces and
// signatures from packages the analyzed package may not even import.
// Analyzers run concurrently within a package, so cache access is serialized
// here; Load's internal recursion runs single-threaded under the lock.
func (p *Pass) Dep(path string) (*types.Package, error) {
	p.loader.depMu.Lock()
	pkg, err := p.loader.Load(path)
	p.loader.depMu.Unlock()
	if err != nil {
		return nil, err
	}
	if len(pkg.Errs) > 0 {
		return nil, fmt.Errorf("analysis: dependency %s has type errors: %v", path, pkg.Errs[0])
	}
	return pkg.Types, nil
}

// Diagnostic is one finding, resolved to a file position and annotated with
// the allow directive that suppressed it, if any.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed is true when an //erdos:allow directive covers the finding;
	// AllowReason carries the directive's justification.
	Suppressed  bool
	AllowReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Timings holds the cumulative wall time each analyzer spent across all
// analyzed packages. Analyzers run concurrently, so the values overlap; they
// rank relative cost, not total runtime.
type Timings map[string]time.Duration

// Run executes the analyzers over the packages and returns every diagnostic
// (suppressed ones included), sorted by position. Packages with type errors
// abort the run: analyzers cannot be trusted on half-checked trees.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunTimed(l, pkgs, analyzers)
	return diags, err
}

// RunTimed is Run plus per-analyzer wall-time accounting. Within each
// package the analyzers execute concurrently — each gets a private
// diagnostic slice, merged in analyzer order afterwards, so output stays
// deterministic regardless of scheduling.
func RunTimed(l *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, Timings, error) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	timings := Timings{}
	var tmu sync.Mutex
	var all []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.Errs) > 0 {
			return nil, nil, fmt.Errorf("analysis: %s has type errors: %v", pkg.Path, pkg.Errs[0])
		}
		dirs, bad := parseAllows(l.Fset, pkg.Files)
		all = append(all, bad...)
		perAnalyzer := make([][]Diagnostic, len(analyzers))
		errs := make([]error, len(analyzers))
		var wg sync.WaitGroup
		for i, a := range analyzers {
			wg.Add(1)
			go func(i int, a *Analyzer) {
				defer wg.Done()
				start := time.Now()
				pass := &Pass{Analyzer: a, Fset: l.Fset, Pkg: pkg, loader: l, diags: &perAnalyzer[i]}
				errs[i] = a.Run(pass)
				tmu.Lock()
				timings[a.Name] += time.Since(start)
				tmu.Unlock()
			}(i, a)
		}
		wg.Wait()
		var diags []Diagnostic
		for i, a := range analyzers {
			if errs[i] != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, errs[i])
			}
			diags = append(diags, perAnalyzer[i]...)
		}
		for i := range diags {
			if d := matchAllow(dirs, diags[i]); d != nil {
				diags[i].Suppressed, diags[i].AllowReason = true, d.reason
				d.used = true
			}
		}
		all = append(all, diags...)
		// A directive whose analyzer ran but that suppressed nothing is stale:
		// either the violation was fixed (delete the directive) or the
		// directive drifted away from the line it excuses.
		for _, d := range dirs {
			if ran[d.analyzer] && !d.used {
				all = append(all, Diagnostic{
					Analyzer: "allow",
					Pos:      d.pos,
					Message:  fmt.Sprintf("stale //erdos:allow %s directive: nothing to suppress on this or the next line", d.analyzer),
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, timings, nil
}
