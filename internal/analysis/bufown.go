// The bufown analyzer proves acquire/release balance for owned pooled
// resources on every control-flow path. The receive path hands out pooled
// payloads (comm.AcquirePayload), fanout shares refcounted broadcast frames
// (newBroadcastFrame), and codecs borrow boxed headers from sync.Pools; all
// of them rely on a hand-policed protocol — release exactly once, or hand
// ownership off (SendRelease, message payloads, channel sends, returns).
// A buffer dropped on an early error return is a silent allocation-rate
// regression (pooling is safe-by-default: the GC eats the loss), and a
// double release poisons the pool with an aliased buffer, which corrupts a
// later frame — the worst kind of data-plane bug.
//
// The analysis runs on the shared CFG engine (internal/analysis/flow) and
// tracks locals bound directly to an acquire:
//
//	p := comm.AcquirePayload(n)    // pooled payload
//	v := sp.Get()                  // comm.StructPool
//	h := pool.Get().(*[]byte)      // sync.Pool, single-value assert form
//	bf := newBroadcastFrame(b, t, n)
//
// Each tracked local carries {may-owned, may-released, deferred-release}
// bits. Releases are comm.RecyclePayload / ReleaseMessage, StructPool.Put,
// sync.Pool.Put, and broadcastFrame.release. Ownership transfers end
// tracking silently: returning the value, sending it on a channel, storing
// it into a field/index/element, wrapping it in a composite literal or
// message constructor (message.Data), passing it to newBroadcastFrame,
// spawning a goroutine with it, aliasing it, or capturing it in a function
// literal. Assigning an owned buffer to a package-level variable is flagged
// as an escape: pooled memory parked in globals outlives every release
// protocol. All other calls borrow — the callee may read the buffer but
// ownership stays here — which is what makes an io.ReadFull error return
// without a recycle visible as a leak.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/erdos-go/erdos/internal/analysis/flow"
)

// BufOwn flags pooled-buffer leaks, double releases, and escapes.
var BufOwn = &Analyzer{
	Name: "bufown",
	Doc:  "every acquired pooled buffer/frame is released or ownership-transferred on all paths, exactly once",
	Run:  runBufOwn,
}

func runBufOwn(pass *Pass) error {
	a := &bufownPass{
		pass:      pass,
		info:      pass.Pkg.Info,
		decls:     packageFuncDecls(pass.Pkg),
		wrapCache: map[*types.Func]int{},
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.scope(n.Body)
				}
			case *ast.FuncLit:
				a.scope(n.Body)
			}
			return true
		})
	}
	return nil
}

// ownBits is the abstract state of one tracked variable.
type ownBits struct {
	kind string
	// acq is the position of the (earliest) acquire.
	acq token.Pos
	// rel is the position of the (earliest) release, when mayReleased.
	rel token.Pos
	// mayOwned: some path reaches here with the resource live.
	mayOwned bool
	// mayReleased: some path has already released it.
	mayReleased bool
	// deferRel: a deferred call releases it at function exit.
	deferRel bool
}

type ownMap map[*types.Var]*ownBits

func (s ownMap) clone() ownMap {
	c := make(ownMap, len(s))
	for k, v := range s {
		b := *v
		c[k] = &b
	}
	return c
}

// join merges src into dst with may semantics on both bits.
func (s ownMap) join(src ownMap) bool {
	changed := false
	for k, v := range src {
		d, ok := s[k]
		if !ok {
			b := *v
			s[k] = &b
			changed = true
			continue
		}
		merge := func(dst *bool, src bool) {
			if src && !*dst {
				*dst = true
				changed = true
			}
		}
		merge(&d.mayOwned, v.mayOwned)
		merge(&d.mayReleased, v.mayReleased)
		merge(&d.deferRel, v.deferRel)
		if v.acq.IsValid() && (!d.acq.IsValid() || v.acq < d.acq) {
			d.acq = v.acq
			changed = true
		}
		if v.rel.IsValid() && (!d.rel.IsValid() || v.rel < d.rel) {
			d.rel = v.rel
			changed = true
		}
	}
	return changed
}

// scope runs the ownership dataflow over one function body.
func (a *bufownPass) scope(body *ast.BlockStmt) {
	cfg := flow.New(body)
	p := flow.Problem[ownMap]{
		Entry:    func() ownMap { return ownMap{} },
		Clone:    func(s ownMap) ownMap { return s.clone() },
		Join:     func(dst, src ownMap) bool { return dst.join(src) },
		Transfer: func(s ownMap, n ast.Node) ownMap { a.transfer(s, n, nil); return s },
	}
	res := flow.Solve(cfg, p)
	// The replay pass re-runs the same transfer with a reporter attached;
	// each event is visited exactly once, so diagnostics never duplicate
	// across fixpoint iterations.
	res.Visit(p, func(n ast.Node, s ownMap) {
		scratch := s.clone()
		a.transfer(scratch, n, a.report)
	})
}

type bufownPass struct {
	pass  *Pass
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl
	// wrapCache memoizes wrapperReleaseParam per function object.
	wrapCache map[*types.Func]int
}

// violation describes one protocol breach found while replaying an event.
type violationKind int

const (
	vLeak violationKind = iota
	vDoubleRelease
	vOverwrite
	vEscape
)

func (a *bufownPass) report(kind violationKind, pos token.Pos, v *types.Var, st *ownBits) {
	line := func(p token.Pos) int { return a.pass.Fset.Position(p).Line }
	switch kind {
	case vLeak:
		a.pass.Reportf(pos,
			"%s %s (acquired at line %d) is not released or ownership-transferred on this return path",
			st.kind, v.Name(), line(st.acq))
	case vDoubleRelease:
		if st.mayOwned {
			a.pass.Reportf(pos,
				"conditional double release of %s %s: already released at line %d on some path",
				st.kind, v.Name(), line(st.rel))
		} else {
			a.pass.Reportf(pos,
				"double release of %s %s: already released at line %d",
				st.kind, v.Name(), line(st.rel))
		}
	case vOverwrite:
		a.pass.Reportf(pos,
			"reacquire into %s overwrites a live %s acquired at line %d without release (leak in a loop?)",
			v.Name(), st.kind, line(st.acq))
	case vEscape:
		a.pass.Reportf(pos,
			"%s %s (acquired at line %d) escapes into package-level state; pooled memory must not outlive its release protocol",
			st.kind, v.Name(), line(st.acq))
	}
}

type reporter func(kind violationKind, pos token.Pos, v *types.Var, st *ownBits)

// transfer folds one CFG event into the state. With a non-nil reporter it
// also emits diagnostics against the pre-event state (the solver passes
// nil; the replay pass passes the real reporter).
func (a *bufownPass) transfer(s ownMap, n ast.Node, rep reporter) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(s, n, rep)
	case *ast.DeclStmt:
		a.declare(s, n, rep)
	case *ast.SendStmt:
		a.exprEffects(s, n.Value, rep)
		a.transferMentioned(s, n.Value)
	case *ast.CommClause:
		if send, ok := n.Comm.(*ast.SendStmt); ok {
			a.exprEffects(s, send.Value, rep)
			a.transferMentioned(s, send.Value)
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.exprEffects(s, r, rep)
			a.transferMentioned(s, r)
		}
		if rep != nil {
			// Anything still may-owned without a deferred release leaks on
			// this path. Report in deterministic order.
			var leaked []*types.Var
			for v, st := range s {
				if st.mayOwned && !st.deferRel {
					leaked = append(leaked, v)
				}
			}
			sort.Slice(leaked, func(i, j int) bool { return leaked[i].Pos() < leaked[j].Pos() })
			for _, v := range leaked {
				rep(vLeak, n.Pos(), v, s[v])
			}
		}
	case *ast.DeferStmt:
		a.deferred(s, n)
	case *ast.GoStmt:
		// The goroutine takes the values it mentions with it; ownership
		// is its problem now.
		a.transferMentioned(s, n.Call)
	case *ast.SelectStmt, *ast.RangeStmt:
		// Range borrows its operand; select is a marker.
	case *ast.ExprStmt:
		a.exprEffects(s, n.X, rep)
	case ast.Expr:
		// Conditions, switch tags, case lists.
		a.exprEffects(s, n, rep)
	}
}

// assign handles acquires, aliasing, stores, and escapes.
func (a *bufownPass) assign(s ownMap, n *ast.AssignStmt, rep reporter) {
	// Effects inside the RHSs first (releases/borrows in nested calls).
	for _, r := range n.Rhs {
		a.exprEffects(s, r, rep)
	}
	// Direct acquire: one LHS ident bound to one acquiring RHS.
	if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
		if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if kind, ok := a.acquireExpr(n.Rhs[0]); ok {
				v := a.lhsVar(id)
				if v == nil {
					return
				}
				if st, ok := s[v]; ok && st.mayOwned && !st.deferRel && rep != nil {
					rep(vOverwrite, n.Rhs[0].Pos(), v, st)
				}
				prevDefer := false
				if st, ok := s[v]; ok {
					prevDefer = st.deferRel
				}
				s[v] = &ownBits{kind: kind, acq: n.Rhs[0].Pos(), mayOwned: true, deferRel: prevDefer}
				return
			}
		}
	}
	// Not an acquire: every tracked var mentioned in a RHS either moves
	// into a structure (transfer), aliases another local (forfeits
	// tracking), or escapes into a global (flagged).
	for i, r := range n.Rhs {
		mentioned := a.mentionedVars(s, r)
		if len(mentioned) == 0 {
			continue
		}
		var lhs ast.Expr
		if len(n.Lhs) == len(n.Rhs) {
			lhs = n.Lhs[i]
		} else if len(n.Lhs) > 0 {
			lhs = n.Lhs[0]
		}
		for _, v := range mentioned {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if id.Name == "_" {
					continue // _ = p silences the compiler; still ours
				}
				if a.info.Uses[id] == v || a.info.Defs[id] == v {
					continue // self-update (p = p[:n]); same buffer
				}
				if obj, ok := a.info.Uses[id].(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
					if st := s[v]; st != nil && st.mayOwned && rep != nil {
						rep(vEscape, n.Pos(), v, st)
					}
				}
			}
			delete(s, v)
		}
	}
}

// declare handles `var p = comm.AcquirePayload(n)`.
func (a *bufownPass) declare(s ownMap, n *ast.DeclStmt, rep reporter) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, val := range vs.Values {
			a.exprEffects(s, val, rep)
		}
		if len(vs.Names) != 1 || len(vs.Values) != 1 {
			continue
		}
		if kind, ok := a.acquireExpr(vs.Values[0]); ok {
			if v, ok := a.info.Defs[vs.Names[0]].(*types.Var); ok {
				s[v] = &ownBits{kind: kind, acq: vs.Values[0].Pos(), mayOwned: true}
			}
		}
	}
}

// deferred classifies a defer statement: a deferred release call (direct or
// wrapped in a literal) marks the variable released-at-exit; any other
// deferred use of a tracked variable hands it off.
func (a *bufownPass) deferred(s ownMap, n *ast.DeferStmt) {
	if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		released := a.releasedInside(s, lit.Body)
		for _, v := range released {
			if st, ok := s[v]; ok {
				st.deferRel = true
			}
		}
		// Captured but not released: the literal owns it now.
		for _, v := range a.mentionedVarsIncludingLits(s, lit.Body) {
			if st, ok := s[v]; ok && !st.deferRel {
				delete(s, v)
			}
		}
		return
	}
	if v := a.releaseTarget(n.Call); v != nil {
		if st, ok := s[v]; ok {
			st.deferRel = true
		}
		return
	}
	// defer f(p): f runs at exit with p; treat as a deferred handoff.
	a.transferMentioned(s, n.Call)
}

// exprEffects walks one expression event: releases update state (and report
// double releases), composite literals and transfer-table calls move
// ownership out, function literals capture, address-of aliases.
func (a *bufownPass) exprEffects(s ownMap, e ast.Expr, rep reporter) {
	if e == nil {
		return
	}
	flow.Inspect(e, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if v := a.releaseTarget(m); v != nil {
				if st, ok := s[v]; ok {
					if rep != nil && st.mayReleased {
						rep(vDoubleRelease, m.Pos(), v, st)
					}
					st.mayOwned = false
					st.mayReleased = true
					if !st.rel.IsValid() {
						st.rel = m.Pos()
					}
				}
				return true
			}
			if a.transferCall(m) {
				for _, arg := range m.Args {
					a.transferMentioned(s, arg)
				}
			}
			// Any other call borrows its arguments; ownership stays here.
		case *ast.CompositeLit:
			// Wrapping an owned value in a literal (outMsg{raw: p},
			// message.Message{Payload: p}) moves it into the structure.
			a.transferMentioned(s, m)
			return false
		case *ast.FuncLit:
			// Unreachable: flow.Inspect skips literals. Kept for clarity.
			return false
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				// Address taken: the buffer is aliased beyond tracking.
				a.transferMentioned(s, m.X)
			}
		}
		return true
	})
	// flow.Inspect skips function literals; scan them separately for
	// captures of tracked variables (the literal may outlive this frame).
	ast.Inspect(e, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			for _, v := range a.mentionedVarsIncludingLits(s, lit.Body) {
				delete(s, v)
			}
			return false
		}
		return true
	})
}

// acquireExpr classifies an expression as an ownership-creating acquire.
func (a *bufownPass) acquireExpr(e ast.Expr) (kind string, ok bool) {
	e = ast.Unparen(e)
	// Single-value type assertion over a sync.Pool Get:
	// h := pool.Get().(*[]byte). The comma-ok form has two LHS and never
	// reaches here.
	asserted := false
	if ta, isAssert := e.(*ast.TypeAssertExpr); isAssert && ta.Type != nil {
		e = ast.Unparen(ta.X)
		asserted = true
	}
	// A pooled payload is often resliced in place: AcquirePayload(n)[:0].
	if sl, isSlice := e.(*ast.SliceExpr); isSlice {
		e = ast.Unparen(sl.X)
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	fn := calleeFunc(a.info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg, name, recv := fn.Pkg().Path(), fn.Name(), recvTypeName(fn)
	switch {
	case pkg == commPkgPath && recv == "" && name == "AcquirePayload":
		return "pooled payload", true
	case pkg == commPkgPath && recv == "StructPool" && name == "Get":
		return "pooled struct", true
	case pkg == commPkgPath && recv == "" && name == "newBroadcastFrame":
		return "broadcast frame", true
	case pkg == "sync" && recv == "Pool" && name == "Get" && asserted:
		// Only the protocol form pool.Get().(*T) creates an obligation. The
		// bare v := pool.Get() returning any is pool-implementation plumbing
		// (if v := p.Get(); v != nil { ... }) where the nil branch owns
		// nothing — outside a nullness-free analysis.
		return "pooled object", true
	}
	return "", false
}

// releaseTarget returns the tracked variable a call releases, or nil: a
// direct release from the table, or a same-package release wrapper.
func (a *bufownPass) releaseTarget(call *ast.CallExpr) *types.Var {
	if v := a.directReleaseTarget(call); v != nil {
		return v
	}
	fn := calleeFunc(a.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != a.pass.Pkg.Path {
		return nil
	}
	// A same-package wrapper whose body hands a parameter straight to a
	// release (l.recycle(it) → itemPool.Put(it)) releases that argument.
	// One level deep: the wrapper's body is checked against the direct
	// table only.
	if idx := a.wrapperReleaseParam(fn); idx >= 0 && idx < len(call.Args) {
		return a.identVar(call.Args[idx])
	}
	return nil
}

// directReleaseTarget matches the direct release table only.
func (a *bufownPass) directReleaseTarget(call *ast.CallExpr) *types.Var {
	fn := calleeFunc(a.info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	pkg, name, recv := fn.Pkg().Path(), fn.Name(), recvTypeName(fn)
	argVar := func(i int) *types.Var {
		if i >= len(call.Args) {
			return nil
		}
		return a.identVar(call.Args[i])
	}
	switch {
	case pkg == commPkgPath && recv == "" && (name == "RecyclePayload" || name == "ReleaseMessage"):
		return argVar(0)
	case pkg == commPkgPath && recv == "StructPool" && name == "Put":
		return argVar(0)
	case pkg == "sync" && recv == "Pool" && name == "Put":
		return argVar(0)
	case pkg == commPkgPath && recv == "broadcastFrame" && name == "release":
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return a.identVar(sel.X)
		}
		return nil
	}
	return nil
}

// wrapperReleaseParam returns the index of the parameter fn's body releases
// directly, or -1. Results are memoized per analysis pass.
func (a *bufownPass) wrapperReleaseParam(fn *types.Func) int {
	if idx, ok := a.wrapCache[fn]; ok {
		return idx
	}
	a.wrapCache[fn] = -1 // cut self-recursion while computing
	decl, ok := a.decls[fn]
	if !ok || decl.Body == nil {
		return -1
	}
	params := map[*types.Var]int{}
	i := 0
	for _, f := range decl.Type.Params.List {
		for _, name := range f.Names {
			if v, ok := a.info.Defs[name].(*types.Var); ok {
				params[v] = i
			}
			i++
		}
	}
	found := -1
	ast.Inspect(decl.Body, func(m ast.Node) bool {
		if found >= 0 {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if v := a.directReleaseTarget(call); v != nil {
				if idx, ok := params[v]; ok {
					found = idx
				}
			}
		}
		return true
	})
	a.wrapCache[fn] = found
	return found
}

// transferCall reports whether a call takes ownership of its arguments:
// message constructors wrap the payload into a message that the send path
// owns, and newBroadcastFrame owns the buffer it wraps.
func (a *bufownPass) transferCall(call *ast.CallExpr) bool {
	fn := calleeFunc(a.info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name, recv := fn.Pkg().Path(), fn.Name(), recvTypeName(fn)
	switch {
	case pkg == modPath+"/internal/core/message" && recv == "":
		return true // Data, Watermark, and friends wrap payloads
	case pkg == commPkgPath && recv == "" && name == "newBroadcastFrame":
		return true
	case pkg == commPkgPath && recv == "Transport" && (name == "Republish" || name == "RepublishWithHint"):
		return true // a relay republish consumes the verbatim wire frame
	case pkg == "container/heap" && recv == "" && name == "Push":
		return true // the heap owns the item until Pop hands it back
	}
	return false
}

// identVar resolves a (possibly resliced/parenthesized) expression to the
// tracked local it names, or nil.
func (a *bufownPass) identVar(e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := a.info.Uses[id].(*types.Var)
	return v
}

func (a *bufownPass) lhsVar(id *ast.Ident) *types.Var {
	if v, ok := a.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := a.info.Uses[id].(*types.Var)
	return v
}

// mentionedVars returns the tracked variables referenced in e, skipping
// nested function literals.
func (a *bufownPass) mentionedVars(s ownMap, e ast.Expr) []*types.Var {
	var out []*types.Var
	flow.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := a.info.Uses[id].(*types.Var); ok {
				if _, tracked := s[v]; tracked {
					out = append(out, v)
				}
			}
		}
		return true
	})
	return out
}

// mentionedVarsIncludingLits is mentionedVars descending into nested
// literals — used for capture analysis of function-literal bodies.
func (a *bufownPass) mentionedVarsIncludingLits(s ownMap, n ast.Node) []*types.Var {
	var out []*types.Var
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := a.info.Uses[id].(*types.Var); ok {
				if _, tracked := s[v]; tracked {
					out = append(out, v)
				}
			}
		}
		return true
	})
	return out
}

// releasedInside returns tracked variables that a block releases via a
// direct release call (the deferred-literal release idiom).
func (a *bufownPass) releasedInside(s ownMap, body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	ast.Inspect(body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if v := a.releaseTarget(call); v != nil {
				if _, tracked := s[v]; tracked {
					out = append(out, v)
				}
			}
		}
		return true
	})
	return out
}

// transferMentioned removes every tracked variable referenced in n from the
// state: ownership has moved and is no longer this function's obligation.
func (a *bufownPass) transferMentioned(s ownMap, n ast.Node) {
	switch e := n.(type) {
	case ast.Expr:
		for _, v := range a.mentionedVars(s, e) {
			delete(s, v)
		}
	default:
		for _, v := range a.mentionedVarsIncludingLits(s, n) {
			delete(s, v)
		}
	}
}
