package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The loader is shared: fixture packages import the real runtime, and
// type-checking the runtime (plus the stdlib through the source importer)
// once per test would dominate the suite.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loader
}

// expectation is one parsed marker: a diagnostic containing substr must
// appear in file at line, suppressed iff allowed.
type expectation struct {
	file    string
	line    int
	substr  string
	allowed bool
	matched bool
}

// markerRe matches want and wantAllowed markers, each quoting a substring
// of the expected message. An optional signed offset (want-1, want+2) moves
// the expected line relative to the marker, for findings whose own line is
// a line comment and cannot carry a trailing marker.
var markerRe = regexp.MustCompile(`// (wantAllowed|want)([+-]\d+)? "([^"]+)"`)

func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var exps []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range markerRe.FindAllStringSubmatch(line, -1) {
				offset := 0
				if m[2] != "" {
					offset, _ = strconv.Atoi(m[2])
				}
				exps = append(exps, &expectation{
					file:    path,
					line:    i + 1 + offset,
					substr:  m[3],
					allowed: m[1] == "wantAllowed",
				})
			}
		}
	}
	if len(exps) == 0 {
		t.Fatalf("no want markers in %s", dir)
	}
	return exps
}

// runFixture loads testdata/<name>, runs one analyzer, and requires an
// exact bijection between diagnostics and markers.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	l := fixtureLoader(t)
	dir := filepath.Join("testdata", name)
	pkg, err := l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Errs) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.Errs)
	}
	diags, err := Run(l, []*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	exps := parseExpectations(t, dir)
	for _, d := range diags {
		var hit *expectation
		for _, e := range exps {
			if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line &&
				e.allowed == d.Suppressed && strings.Contains(d.Message, e.substr) {
				hit = e
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic: %s (suppressed=%v)", d, d.Suppressed)
			continue
		}
		hit.matched = true
	}
	for _, e := range exps {
		if !e.matched {
			kind := "finding"
			if e.allowed {
				kind = "suppressed finding"
			}
			t.Errorf("%s:%d: expected %s containing %q, got none", e.file, e.line, kind, e.substr)
		}
	}
}

func TestZeroGobFixture(t *testing.T)      { runFixture(t, ZeroGob, "zerogob") }
func TestZeroGobSeamFixture(t *testing.T)  { runFixture(t, ZeroGob, "zerogobseam") }
func TestWallclockFixture(t *testing.T)    { runFixture(t, Wallclock, "wallclock") }
func TestWallclockPkgFixture(t *testing.T) { runFixture(t, Wallclock, "wallclockpkg") }
func TestLockHoldFixture(t *testing.T)     { runFixture(t, LockHold, "lockhold") }
func TestStateTxnFixture(t *testing.T)     { runFixture(t, StateTxn, "statetxn") }
func TestDeadlineHintFixture(t *testing.T) { runFixture(t, DeadlineHint, "deadlinehint") }
func TestBufOwnFixture(t *testing.T)       { runFixture(t, BufOwn, "bufown") }
func TestGoLeakFixture(t *testing.T)       { runFixture(t, GoLeak, "goleak") }
func TestAllowDirectives(t *testing.T)     { runFixture(t, Wallclock, "allow") }

// TestInprocBackendBelowSeam pins zerogob's seam detection to the real
// in-process backend: inproc declares a comm.Backend, so the analyzer must
// classify it as a below-seam byte pipe, and the package itself must stay
// gob-free — its whole point is that same-process payloads never encode.
func TestInprocBackendBelowSeam(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.Load(commPkgPath + "/inproc")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Errs) > 0 {
		t.Fatalf("inproc does not type-check: %v", pkg.Errs)
	}
	commPkg, err := l.Load(commPkgPath)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: l.Fset, Pkg: pkg, loader: l}
	if !declaresBackend(pass, commPkg.Types) {
		t.Fatal("inproc is not classified as below the transport seam")
	}
	diags, err := Run(l, []*Package{pkg}, []*Analyzer{ZeroGob})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("inproc backend finding: %s", d)
	}
}

// TestModuleClean is the tier-1 guard: the shipped tree stays free of
// unsuppressed findings, so `go test` fails the moment a violation lands.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is not short")
	}
	l := fixtureLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(l, pkgs, All)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("%s", d)
		}
	}
}
