// Package loading for erdos-vet: parse and type-check module packages with
// nothing but the standard library. Module-internal imports are resolved by
// recursively loading the imported package; standard-library imports go
// through the source importer (this toolchain ships no precompiled export
// data). Everything is cached per Loader, so a whole-module run type-checks
// each package exactly once.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	// Path is the import path (synthetic for fixture packages).
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the type-checker's results.
	Types *types.Package
	Info  *types.Info
	// Errs collects type-check errors; analyzers refuse packages that
	// did not check cleanly.
	Errs []error
}

// Loader parses and type-checks packages of one module.
type Loader struct {
	Fset *token.FileSet
	// ModDir is the module root (the directory holding go.mod).
	ModDir string
	// ModPath is the module path declared in go.mod.
	ModPath string

	std  types.ImporterFrom
	pkgs map[string]*Package
	// depMu serializes cache access from concurrently running analyzers
	// (Pass.Dep). Load itself is recursive and single-threaded under it.
	depMu sync.Mutex
}

// NewLoader locates the module containing dir and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; {
		if data, err := os.ReadFile(filepath.Join(d, "go.mod")); err == nil {
			modPath := modulePath(data)
			if modPath == "" {
				return nil, fmt.Errorf("analysis: no module path in %s/go.mod", d)
			}
			fset := token.NewFileSet()
			std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
			if !ok {
				return nil, fmt.Errorf("analysis: source importer lacks ImportFrom")
			}
			return &Loader{
				Fset:    fset,
				ModDir:  d,
				ModPath: modPath,
				std:     std,
				pkgs:    map[string]*Package{},
			}, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module declaration from go.mod contents.
func modulePath(mod []byte) string {
	for _, line := range strings.Split(string(mod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load returns the type-checked package for a module-internal import path.
func (l *Loader) Load(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return l.loadDir(filepath.Join(l.ModDir, filepath.FromSlash(rel)), path)
}

// LoadDir type-checks the single package rooted at dir under a synthetic
// import path. Fixture packages (under testdata, invisible to the go tool)
// are loaded this way; their imports of real module packages resolve
// normally.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	return l.loadDir(dir, path)
}

// LoadModule loads every non-test package in the module, skipping testdata
// and hidden directories, in deterministic path order.
func (l *Loader) LoadModule() ([]*Package, error) {
	dirSet := map[string]bool{}
	err := filepath.WalkDir(l.ModDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if isSourceFile(d.Name()) {
			dirSet[filepath.Dir(p)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// isSourceFile reports whether name is a buildable (non-test) Go source.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

func (l *Loader) loadDir(dir, path string) (pkg *Package, err error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return p, nil
	}
	// Mark in-progress for cycle detection; drop the marker on failure so a
	// later retry reports the real error instead of a phantom cycle.
	l.pkgs[path] = nil
	defer func() {
		if err != nil {
			delete(l.pkgs, path)
		}
	}()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS/_GOARCH file
		// suffixes) for the host platform, as the compiler would — loading
		// both sides of a constrained pair redeclares their symbols.
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}

	pkg = &Package{
		Path:  path,
		Dir:   dir,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		},
	}
	conf := types.Config{
		Importer: loaderImporter{l},
		Error:    func(err error) { pkg.Errs = append(pkg.Errs, err) },
	}
	// Check returns an error on the first problem but still populates what it
	// can; collected Errs carry the full story.
	pkg.Types, _ = conf.Check(path, l.Fset, files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter routes module-internal imports back through the Loader and
// everything else (the standard library) through the source importer.
type loaderImporter struct{ l *Loader }

func (li loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, li.l.ModDir, 0)
}

func (li loaderImporter) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	l := li.l
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if len(p.Errs) > 0 {
			return nil, fmt.Errorf("analysis: %s has type errors: %v", path, p.Errs[0])
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}
