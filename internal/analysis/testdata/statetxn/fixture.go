// Fixture for the statetxn analyzer: captured and package-level writes,
// pointer-receiver mutation, and the locality / sync exemptions.
package fixture

import (
	"sync/atomic"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
)

type tracker struct{ n int }

func (t *tracker) bump()    { t.n++ }
func (t tracker) read() int { return t.n }

var global int

func makeSpec() operator.Spec {
	captured := 0
	trk := &tracker{}
	var hits atomic.Int64
	return operator.Spec{
		OnData: func(ctx *operator.Context, input int, m message.Message) {
			captured++     // want "captured"
			global = input // want "global"
			trk.bump()     // want "bump"

			hits.Add(1) // sync/atomic is synchronization, not state
			local := 0
			local++ // locals die with the invocation
			_ = local
			_ = trk.read() // a value receiver cannot mutate

			//erdos:allow statetxn fixture exercises the suppression path
			captured = input // wantAllowed "captured"
		},
	}
}
