// Fixture for the wallclock analyzer: callback roots, same-package
// reachability, the seeded-rand exemption, and suppression.
package fixture

import (
	"math/rand"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
)

var spec = operator.Spec{
	OnData: func(ctx *operator.Context, input int, m message.Message) {
		_ = time.Now() // want "time.Now"
		helper()
	},
	OnWatermark: func(ctx *operator.Context) {
		_ = rand.Int() // want "math/rand"
		r := rand.New(rand.NewSource(7))
		_ = r.Int() // explicitly-seeded generators are the deterministic pattern
		//erdos:allow wallclock fixture exercises the suppression path
		time.Sleep(time.Millisecond) // wantAllowed "time.Sleep"
	},
}

// helper is reached from the data callback: same-package reachability.
func helper() {
	_ = time.Since(time.Time{}) // want "time.Since"
}

// cold is not reachable from any callback root; wall-clock reads are fine.
func cold() time.Time { return time.Now() }
