// Fixture for the lockhold analyzer: blocking calls inside and outside
// lock intervals, deferred unlocks, select handling, and goroutine scopes.
package fixture

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func recvHeld(b *box) {
	b.mu.Lock()
	<-b.ch // want "channel receive"
	b.mu.Unlock()
}

func sleepUnderDeferredUnlock(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep"
}

func afterUnlock(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	<-b.ch // the lock is released: blocking here is fine
}

func nonBlockingSelect(b *box) {
	b.mu.Lock()
	select {
	case v := <-b.ch: // the default arm keeps this non-blocking
		b.n = v
	default:
	}
	b.mu.Unlock()
}

func blockingSelect(b *box) {
	b.mu.Lock()
	select { // want "select without default"
	case v := <-b.ch:
		b.n = v
	}
	b.mu.Unlock()
}

func allowedSend(b *box) {
	b.mu.Lock()
	//erdos:allow lockhold fixture exercises the suppression path
	b.ch <- 1 // wantAllowed "channel send"
	b.mu.Unlock()
}

func otherGoroutine(b *box) {
	b.mu.Lock()
	go func() {
		<-b.ch // a nested literal is another goroutine's scope, not this section
	}()
	b.mu.Unlock()
}
