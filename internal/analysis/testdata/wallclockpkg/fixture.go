// Fixture: the //erdos:deterministic directive opts a whole package into
// the deterministic domain, so every function is in scope — callbacks or not.
//
//erdos:deterministic
package fixture

import "time"

func anywhere() time.Duration {
	return time.Until(time.Time{}) // want "time.Until"
}

func scheduled() *time.Timer {
	return time.NewTimer(time.Second) // explicit-duration timers stay legal
}
