// Fixture: goleak ties every goroutine to a reachable stop signal — a done
// channel, a context, a WaitGroup the owner waits on, or a Cond. The
// package opts into the check with the directive below, the way the real
// runtime packages are scoped by import path.
//
//erdos:leakcheck
package goleak

import (
	"context"
	"sync"
)

func step() {}

func withDone(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-work:
			case <-done:
				return
			}
		}
	}()
}

func naked() {
	go func() { // want "no reachable stop signal"
		for {
			step()
		}
	}()
}

func withWaitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		step()
	}()
}

func loop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			step()
		}
	}
}

func namedSpawn(stop chan struct{}) {
	go loop(stop)
}

func helper(stop chan struct{}) {
	step()
	loop(stop)
}

// The signal may sit one same-package call deep.
func transitive(stop chan struct{}) {
	go helper(stop)
}

func spin() {
	for {
		step()
	}
}

func namedNaked() {
	go spin() // want "no reachable stop signal"
}

// A function value cannot be resolved statically; the spawn is flagged so
// the author names the loop.
func funcValue(f func()) {
	go f() // want "cannot be verified"
}

func rangeChan(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

func withContext(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			step()
		}
	}()
}

func allowedFireAndForget() {
	//erdos:allow goleak one-shot flush, bounded by construction; nothing to stop
	go func() { // wantAllowed "no reachable stop signal"
		step()
	}()
}
