// Fixture for the directive machinery itself: stale directives and
// directives without a reason are diagnostics. Markers here use a negative
// line offset (the finding lands on the directive line above the marker),
// since a line comment cannot share its line with another comment.
package fixture

//erdos:allow wallclock this directive suppresses nothing
var quiet = 0 // want-1 "stale //erdos:allow wallclock"

//erdos:allow wallclock
var silent = 0 // want-1 "without a reason"
