// Fixture for the zerogob analyzer. A want marker expects an unsuppressed
// finding whose message contains the quoted text on the marker's line; a
// wantAllowed marker expects one suppressed by an //erdos:allow directive.
package fixture

import (
	"time"

	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// raw has no frame codec: sending it falls back to reflective gob.
type raw struct{ N int }

// framed implements comm.FramePayload and ships as a typed frame.
type framed struct{ N int }

func (framed) FrameCodec() uint64             { return 1 }
func (framed) MarshalFrame(dst []byte) []byte { return dst }

func sends(ctx *operator.Context, h *operator.HandlerContext, ws stream.WriteStream[raw], ts timestamp.Timestamp) {
	_ = ctx.Send(0, ts, raw{N: 1}) // want "payload type"
	_ = h.Send(0, ts, raw{N: 2})   // want "payload type"
	_ = ws.Send(ts, raw{N: 3})     // want "payload type"

	_ = ctx.Send(0, ts, framed{N: 4}) // implements comm.FramePayload
	_ = ctx.Send(0, ts, []byte("ok")) // raw frames ship as-is
	_ = ctx.Send(0, ts, time.Second)  // deadline-feed codec
	var p any = raw{N: 5}
	_ = ctx.Send(0, ts, p) // interface-typed payload: dynamic type unknown

	//erdos:allow zerogob fixture exercises the suppression path
	_ = ctx.Send(0, ts, raw{N: 6}) // wantAllowed "payload type"
}
