// Fixture: bufown proves acquire/release balance for pooled buffers,
// structs, and refcounted frames over the CFG — early-return leaks, loop
// reacquires, double releases, and the ownership transfers that end the
// obligation (returns, channel sends, deferred releases).
package bufown

import (
	"sync"

	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/stream"
)

var sink []byte

func fill(b []byte) {}

func earlyReturnLeak(cond bool) {
	p := comm.AcquirePayload(64)
	if cond {
		return // want "not released or ownership-transferred"
	}
	comm.RecyclePayload(p)
}

func loopReacquire(n int) {
	var p []byte
	for i := 0; i < n; i++ {
		p = comm.AcquirePayload(64) // want "leak in a loop"
	}
	comm.RecyclePayload(p)
}

func doubleRelease() {
	p := comm.AcquirePayload(64)
	comm.RecyclePayload(p)
	comm.RecyclePayload(p) // want "double release of pooled payload p"
}

func conditionalDoubleRelease(cond bool) {
	p := comm.AcquirePayload(64)
	if cond {
		comm.RecyclePayload(p)
	}
	comm.RecyclePayload(p) // want "conditional double release"
}

func deferRelease() {
	p := comm.AcquirePayload(64)
	defer comm.RecyclePayload(p)
	fill(p)
}

func deferLitRelease() {
	p := comm.AcquirePayload(64)
	defer func() {
		comm.RecyclePayload(p)
	}()
	fill(p)
}

func sendTransfer(ch chan []byte) {
	p := comm.AcquirePayload(64)
	ch <- p
}

func selectSendTransfer(ch chan []byte, done chan struct{}) {
	p := comm.AcquirePayload(64)
	select {
	case ch <- p:
	case <-done:
		comm.RecyclePayload(p)
	}
}

func returnTransfer() []byte {
	p := comm.AcquirePayload(64)
	return p
}

func globalEscape() {
	p := comm.AcquirePayload(64)
	sink = p // want "escapes into package-level state"
}

// A borrowed call (fill, or io.ReadFull in the runtime) does not discharge
// the obligation: the leak on the error path stays visible.
func borrowDoesNotRelease(cond bool) {
	p := comm.AcquirePayload(64)
	fill(p)
	if cond {
		return // want "not released or ownership-transferred"
	}
	comm.RecyclePayload(p)
}

var structs comm.StructPool[int]

func structPoolLeak(cond bool) {
	v := structs.Get()
	if cond {
		return // want "pooled struct v"
	}
	structs.Put(v)
}

var boxPool sync.Pool

// The protocol form pool.Get().(*T) creates an obligation...
func assertedPoolGet(cond bool) {
	h := boxPool.Get().(*[]byte)
	if cond {
		return // want "pooled object h"
	}
	boxPool.Put(h)
}

// ...while the bare any-typed Get with a nil guard is pool plumbing and
// owns nothing on the nil branch.
func barePoolGetClean() *[]byte {
	if v := boxPool.Get(); v != nil {
		return v.(*[]byte)
	}
	return new([]byte)
}

func recycleWrapper(b []byte) {
	comm.RecyclePayload(b)
}

// A same-package wrapper that forwards to a release is itself a release.
func wrapperRelease() {
	p := comm.AcquirePayload(64)
	recycleWrapper(p)
}

// A relay republish consumes the verbatim wire frame: the transfer ends
// the obligation on the send path, and the error-return path before it
// still leaks.
func relayFrameTransfer(t *comm.Transport, id stream.ID) {
	frame := comm.AcquirePayload(256)
	_, _ = t.RepublishWithHint(nil, nil, []string{"a"}, frame, true, id, comm.FlushHint{})
}

func relayFrameLeak(t *comm.Transport, cond bool, id stream.ID) {
	frame := comm.AcquirePayload(256)
	if cond {
		return // want "not released or ownership-transferred"
	}
	_, _ = t.RepublishWithHint(nil, nil, []string{"a"}, frame, true, id, comm.FlushHint{})
}

func allowedDrop(n int) {
	p := comm.AcquirePayload(n)
	if len(p) > 0 {
		//erdos:allow bufown demonstration: oversize buffers fall back to the GC by design
		return // wantAllowed "not released or ownership-transferred"
	}
	comm.RecyclePayload(p)
}
