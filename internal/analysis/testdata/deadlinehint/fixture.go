// Fixture for the deadlinehint analyzer: bare Transport.Send versus the
// hinted variants, bare Lattice.Submit versus SubmitDeadline, and
// suppression of both.
package fixture

import (
	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/lattice"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

func sends(t *comm.Transport, id stream.ID, m message.Message) {
	_ = t.Send("peer", id, m) // want "zero slack"

	_ = t.SendWithHint("peer", id, m, comm.FlushHint{}) // hinted: the coalescer can batch

	//erdos:allow deadlinehint fixture exercises the suppression path
	_ = t.Send("peer", id, m) // wantAllowed "zero slack"
}

func fanouts(t *comm.Transport, bus *comm.Bus, id stream.ID, m message.Message) {
	_, _ = t.Multicast([]string{"a", "b"}, id, m) // want "every copy with zero slack"

	// Hinted fanout variants: the shared frame's flush decisions see the
	// caller's deadline (or its deliberate absence).
	_, _ = t.MulticastWithHint([]string{"a", "b"}, id, m, comm.FlushHint{})
	_, _ = t.MulticastBus(bus, []string{"a"}, []string{"b"}, id, m, comm.FlushHint{})

	//erdos:allow deadlinehint fixture exercises the suppression path
	_, _ = t.Multicast([]string{"a", "b"}, id, m) // wantAllowed "every copy with zero slack"
}

// republishes exercises the relay hop: a bare Republish throws away the
// slack the tagRelay envelope carried across the wire, so relay handlers
// must use the hinted variant.
func republishes(t *comm.Transport, bus *comm.Bus, id stream.ID, frame []byte) {
	_, _ = t.Republish(bus, []string{"a"}, []string{"b"}, frame, true, id) // want "discards the relay envelope's remaining slack"

	_, _ = t.RepublishWithHint(bus, []string{"a"}, []string{"b"}, frame, true, id, comm.FlushHint{})

	//erdos:allow deadlinehint fixture exercises the suppression path
	_, _ = t.Republish(bus, []string{"a"}, []string{"b"}, frame, true, id) // wantAllowed "discards the relay envelope's remaining slack"
}

// seamWrites exercises the backend-seam surface: interface-dispatched
// writes into a connection's frame buffers happen below the coalescer, so
// nothing can hint their flushes.
func seamWrites(fw comm.FrameSink, bc comm.BufferedConn, b []byte) {
	_, _ = fw.Write(b)       // want "bypasses the deadline-aware coalescer"
	_ = fw.Flush()           // want "bypasses the deadline-aware coalescer"
	_, _ = bc.FrameBuffers() // want "below-seam byte sink"

	//erdos:allow deadlinehint fixture exercises the suppression path
	_ = fw.Flush() // wantAllowed "bypasses the deadline-aware coalescer"
}

func submits(l *lattice.Lattice, q *lattice.OpQueue, ts timestamp.Timestamp) {
	l.Submit(q, lattice.KindMessage, ts, func() {}) // want "no deadline"

	// Deadline-carrying path: EDF dispatch sees the urgency (or its
	// deliberate absence).
	l.SubmitDeadline(q, lattice.KindMessage, ts, lattice.NoDeadline, func() {})

	//erdos:allow deadlinehint fixture exercises the suppression path
	l.Submit(q, lattice.KindMessage, ts, func() {}) // wantAllowed "no deadline"
}
