// Fixture for the deadlinehint analyzer: bare Transport.Send versus the
// hinted variants, and suppression.
package fixture

import (
	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
)

func sends(t *comm.Transport, id stream.ID, m message.Message) {
	_ = t.Send("peer", id, m) // want "zero slack"

	_ = t.SendWithHint("peer", id, m, comm.FlushHint{}) // hinted: the coalescer can batch

	//erdos:allow deadlinehint fixture exercises the suppression path
	_ = t.Send("peer", id, m) // wantAllowed "zero slack"
}
