// Fixture for zerogob's backend-seam check: this package declares a
// comm.Backend implementation, which makes it a below-seam byte pipe —
// any encoding/gob use inside it must be flagged. Typed-frame checks on
// ordinary payload sends are exercised by the zerogob fixture; this one
// is only about the seam.
package fixture

import (
	"bytes"
	"encoding/gob"
	"net"

	"github.com/erdos-go/erdos/internal/core/comm"
)

// fakeBackend makes the package "below the seam".
type fakeBackend struct{}

func (fakeBackend) Scheme() string                       { return "fake" }
func (fakeBackend) Listen(string) (comm.Listener, error) { return nil, nil }
func (fakeBackend) Dial(string) (net.Conn, error)        { return nil, nil }

type record struct{ N int }

func encodeBelowSeam(v record) []byte {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf) // want "encoding/gob below the transport seam"
	_ = enc.Encode(v)           // want "encoding/gob below the transport seam"
	return buf.Bytes()
}

func decodeBelowSeam(b []byte) record {
	var v record
	//erdos:allow zerogob fixture exercises the suppression path
	dec := gob.NewDecoder(bytes.NewReader(b)) // wantAllowed "encoding/gob below the transport seam"
	//erdos:allow zerogob fixture exercises the suppression path
	_ = dec.Decode(&v) // wantAllowed "encoding/gob below the transport seam"
	return v
}
