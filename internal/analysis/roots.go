// Shared detection of operator-callback roots: the function bodies the
// runtime invokes on the data path — data/watermark callbacks, deadline
// exception handlers, and frequency-deadline observers. The wallclock and
// statetxn analyzers scope their checks to these roots (and, for wallclock,
// to the same-package helpers they reach), because that is exactly the code
// whose behavior must replay deterministically and whose state must flow
// through the store.
package analysis

import (
	"go/ast"
	"go/types"
)

// Module-internal package paths the analyzers key on. Matching is by import
// path of the *referenced* object, so fixture packages that import the real
// runtime are analyzed identically to module code.
const (
	modPath         = "github.com/erdos-go/erdos"
	erdosPkgPath    = modPath + "/internal/core/erdos"
	operatorPkgPath = modPath + "/internal/core/operator"
	commPkgPath     = modPath + "/internal/core/comm"
	latticePkgPath  = modPath + "/internal/core/lattice"
	streamPkgPath   = modPath + "/internal/core/stream"
	statePkgPath    = modPath + "/internal/core/state"
	faultsPkgPath   = modPath + "/internal/core/faults"
	elasticPkgPath  = modPath + "/internal/core/cluster/elastic"
)

// root is one callback function body in the analyzed package.
type root struct {
	// node is an *ast.FuncLit or *ast.FuncDecl.
	node ast.Node
	// body is the function's body block.
	body *ast.BlockStmt
	// desc says how the function became a callback, for diagnostics.
	desc string
}

// registrar describes one erdos registration call whose argument is a
// callback: package path, function (or method) name, and the positional
// index of the callback argument.
type registrar struct {
	pkg  string
	name string
	arg  int
	desc string
}

var registrars = []registrar{
	{erdosPkgPath, "Input", 2, "data callback (erdos.Input)"},
	{erdosPkgPath, "OnWatermark", 0, "watermark callback (OpBuilder.OnWatermark)"},
	{erdosPkgPath, "TimestampDeadline", 3, "deadline exception handler (OpBuilder.TimestampDeadline)"},
	{erdosPkgPath, "FrequencyDeadline", 3, "watermark-insert observer (OpBuilder.FrequencyDeadline)"},
}

// specField marks operator.Spec-family struct fields that hold callbacks,
// catching registrations that bypass the builder (composite literals and
// direct field assignment).
var specFields = map[[2]string]string{
	{"Spec", "OnData"}:                    "data callback (operator.Spec.OnData)",
	{"Spec", "OnWatermark"}:               "watermark callback (operator.Spec.OnWatermark)",
	{"TimestampDeadlineSpec", "Handler"}:  "deadline exception handler (operator.TimestampDeadlineSpec.Handler)",
	{"FrequencyDeadlineSpec", "OnInsert"}: "watermark-insert observer (operator.FrequencyDeadlineSpec.OnInsert)",
}

// callbackRoots scans the package for operator-callback registrations and
// returns the function bodies they bind, deduplicated.
func callbackRoots(pass *Pass) []root {
	info := pass.Pkg.Info
	decls := packageFuncDecls(pass.Pkg)
	seen := map[ast.Node]bool{}
	var roots []root

	add := func(expr ast.Expr, desc string) {
		switch e := ast.Unparen(expr).(type) {
		case *ast.FuncLit:
			if !seen[e] {
				seen[e] = true
				roots = append(roots, root{node: e, body: e.Body, desc: desc})
			}
		case *ast.Ident, *ast.SelectorExpr:
			id := rightmostIdent(e)
			if id == nil {
				return
			}
			fn, ok := info.Uses[id].(*types.Func)
			if !ok {
				return
			}
			if decl := decls[fn]; decl != nil && decl.Body != nil && !seen[decl] {
				seen[decl] = true
				roots = append(roots, root{node: decl, body: decl.Body, desc: desc})
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				for _, r := range registrars {
					if fn.Pkg().Path() == r.pkg && fn.Name() == r.name && r.arg < len(n.Args) {
						add(n.Args[r.arg], r.desc)
					}
				}
			case *ast.CompositeLit:
				tn := namedTypeName(typeOf(info, n))
				if tn == nil || tn.Pkg() == nil || tn.Pkg().Path() != operatorPkgPath {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if desc, ok := specFields[[2]string{tn.Name(), key.Name}]; ok {
						add(kv.Value, desc)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					v, ok := info.Uses[sel.Sel].(*types.Var)
					if !ok || !v.IsField() || v.Pkg() == nil || v.Pkg().Path() != operatorPkgPath {
						continue
					}
					tn := namedTypeName(typeOf(info, sel.X))
					if tn == nil {
						continue
					}
					if desc, ok := specFields[[2]string{tn.Name(), sel.Sel.Name}]; ok {
						add(n.Rhs[i], desc)
					}
				}
			}
			return true
		})
	}
	return roots
}

// reachableDecls returns the package-level function declarations reachable
// from the roots through same-package references (calls or function values),
// transitively. Cross-package reachability is out of scope: callees in other
// packages are covered when those packages declare their own roots or
// deterministic scope.
func reachableDecls(pass *Pass, roots []root) map[*ast.FuncDecl]string {
	info := pass.Pkg.Info
	decls := packageFuncDecls(pass.Pkg)
	out := map[*ast.FuncDecl]string{}
	var queue []*ast.FuncDecl

	scan := func(body *ast.BlockStmt, desc string) {
		ast.Inspect(body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if decl := decls[fn]; decl != nil && decl.Body != nil {
				if _, dup := out[decl]; !dup {
					out[decl] = desc
					queue = append(queue, decl)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		scan(r.body, "reachable from "+r.desc)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		scan(d.Body, "reachable from "+d.Name.Name+" (called from an operator callback)")
	}
	// Roots that are themselves declarations must not double-report.
	for _, r := range roots {
		if d, ok := r.node.(*ast.FuncDecl); ok {
			delete(out, d)
		}
	}
	return out
}

// packageFuncDecls maps each declared function and method object to its
// syntax.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// calleeFunc resolves the function or method a call statically invokes,
// unwrapping parens and generic instantiation syntax. Calls through function
// values resolve to nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr:
		id = rightmostIdent(fun.X)
	case *ast.IndexListExpr:
		id = rightmostIdent(fun.X)
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// rightmostIdent returns the identifier naming e: the ident itself, or the
// selector's Sel.
func rightmostIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// typeOf returns the static type of e, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// namedTypeName returns the *types.TypeName behind t (unwrapping one level
// of pointer and instantiated generics), or nil for unnamed types.
func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj()
	case *types.Alias:
		return t.Obj()
	}
	return nil
}

// recvTypeName returns the name of fn's receiver type (unwrapping pointers),
// or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if tn := namedTypeName(t); tn != nil {
		return tn.Name()
	}
	return ""
}
