// Parsing of //erdos:allow suppression directives. A directive covers
// diagnostics on its own line (trailing comment) or the line directly below
// it (directive-only line above the offending statement); the mandatory
// reason keeps every exception auditable in place.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

const allowPrefix = "//erdos:allow"

var allowRe = regexp.MustCompile(`^//erdos:allow[ \t]+([a-z]+)[ \t]*(.*)$`)

// allowDirective is one parsed //erdos:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// parseAllows extracts directives from the files' comments. Malformed
// directives (unparsable, or missing the reason) come back as diagnostics:
// an unexplained exception is itself a violation.
func parseAllows(fset *token.FileSet, files []*ast.File) (dirs []*allowDirective, bad []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				m := allowRe.FindStringSubmatch(c.Text)
				pos := fset.Position(c.Pos())
				if m == nil {
					bad = append(bad, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed directive %q: want //erdos:allow <analyzer> <reason>", c.Text),
					})
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  fmt.Sprintf("//erdos:allow %s without a reason: justify the exception", m[1]),
					})
					continue
				}
				dirs = append(dirs, &allowDirective{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					pos:      pos,
				})
			}
		}
	}
	return dirs, bad
}

// matchAllow returns the directive covering d, or nil.
func matchAllow(dirs []*allowDirective, d Diagnostic) *allowDirective {
	for _, dir := range dirs {
		if dir.analyzer != d.Analyzer || dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if d.Pos.Line == dir.pos.Line || d.Pos.Line == dir.pos.Line+1 {
			return dir
		}
	}
	return nil
}
