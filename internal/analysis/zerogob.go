// The zerogob analyzer enforces the zero-gob data plane at compile time:
// every concrete payload type handed to a stream send must be encodable as a
// typed frame — raw bytes, the deadline-feed time.Duration, or a type
// implementing comm.FramePayload (and thus backed by a registered
// comm.Codec). Anything else silently falls back to reflective gob framing
// on the wire, which the runtime treats as a cross-worker performance bug.
//
// The check also guards the transport backend seam from below: a package
// that implements comm.Backend is a dumb byte pipe by contract (framing and
// codecs live above the seam), so any encoding/gob use inside it would
// re-introduce reflective encoding beneath the layer that promises there is
// none. The comm package itself is exempt — it owns both sides of the seam,
// including the control-plane handshake and the audited gob fallback.
package analysis

import (
	"go/ast"
	"go/types"
)

// ZeroGob flags stream sends whose payload type has no typed frame codec.
var ZeroGob = &Analyzer{
	Name: "zerogob",
	Doc:  "stream payloads must have a typed frame codec (comm.FramePayload), not the gob fallback",
	Run:  runZeroGob,
}

// sendSite describes one send API whose payload argument is checked.
type sendSite struct {
	pkg  string
	recv string
	name string
	arg  int
}

var zerogobSites = []sendSite{
	{operatorPkgPath, "Context", "Send", 2},
	{operatorPkgPath, "HandlerContext", "Send", 2},
	{streamPkgPath, "WriteStream", "Send", 1},
}

func runZeroGob(pass *Pass) error {
	commPkg, err := pass.Dep(commPkgPath)
	if err != nil {
		return err
	}
	fpObj := commPkg.Scope().Lookup("FramePayload")
	if fpObj == nil {
		return nil
	}
	framePayload, ok := fpObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	belowSeam := declaresBackend(pass, commPkg)
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if belowSeam && fn.Pkg().Path() == "encoding/gob" {
				pass.Reportf(call.Pos(),
					"encoding/gob below the transport seam: this package implements comm.Backend, a byte-only pipe — reflective encoding here undoes the zero-gob data plane (frame and encode above the seam instead)")
			}
			for _, s := range zerogobSites {
				if fn.Pkg().Path() != s.pkg || fn.Name() != s.name || recvTypeName(fn) != s.recv {
					continue
				}
				if s.arg >= len(call.Args) {
					continue
				}
				arg := call.Args[s.arg]
				t := typeOf(info, arg)
				if !needsCodec(t, framePayload) {
					continue
				}
				pass.Reportf(arg.Pos(),
					"payload type %s has no typed frame codec and will ship as reflective gob; implement comm.FramePayload and register a comm.Codec (internal/core/comm/codec.go)",
					types.TypeString(t, nil))
			}
			return true
		})
	}
	return nil
}

// declaresBackend reports whether the analyzed package defines a type
// implementing comm.Backend — i.e. sits below the transport seam. The comm
// package (which declares the default tcp backend alongside the seam's
// upper layers) is exempt.
func declaresBackend(pass *Pass, commPkg *types.Package) bool {
	if pass.Pkg.Path == commPkgPath {
		return false
	}
	bObj := commPkg.Scope().Lookup("Backend")
	if bObj == nil {
		return false
	}
	backend, ok := bObj.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.Implements(t, backend) || types.Implements(types.NewPointer(t), backend) {
			return true
		}
	}
	return false
}

// needsCodec reports whether a payload of static type t would hit the gob
// fallback. Interface-typed payloads (including any) are skipped: their
// dynamic type is not statically known.
func needsCodec(t types.Type, framePayload *types.Interface) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if types.IsInterface(t) {
		return false
	}
	// Raw []byte frames ship as-is (tagRaw).
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if el, ok := sl.Elem().(*types.Basic); ok && el.Kind() == types.Byte {
			return false
		}
	}
	// time.Duration rides the built-in deadline-feed codec.
	if tn := namedTypeName(t); tn != nil && tn.Pkg() != nil &&
		tn.Pkg().Path() == "time" && tn.Name() == "Duration" {
		return false
	}
	if types.Implements(t, framePayload) || types.Implements(types.NewPointer(t), framePayload) {
		return false
	}
	return true
}
