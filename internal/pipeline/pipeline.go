// Package pipeline assembles Pylot's AV pipeline (§7.1 of the paper) from
// the component models in internal/av and executes it, frame by frame,
// under the four execution models compared in §7.4:
//
//   - Periodic: every component runs at a fixed period derived from a
//     conservative worst-case execution time (the Apollo/Autoware style);
//     output waits at each period boundary, so the end-to-end response is
//     large but stable.
//   - DataDriven: every component runs to completion upon receiving all of
//     its input (the ROS style); responses track the sum of sampled
//     runtimes, with an unbounded tail.
//   - D3Static: a fixed end-to-end deadline enforced by deadline exception
//     handlers; a missed deadline releases the previous result, bounding
//     the response at the deadline but staling perception by one frame.
//   - D3Dynamic: the same enforcement with the deadline supplied per frame
//     by a deadline policy (package policy), and the detector chosen to
//     fit the allocated budget (§5.3's changing-the-implementation).
package pipeline

import (
	"time"

	"github.com/erdos-go/erdos/internal/av/control"
	"github.com/erdos-go/erdos/internal/av/detection"
	"github.com/erdos-go/erdos/internal/av/prediction"
	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/policy"
	"github.com/erdos-go/erdos/internal/trace"
)

// ExecModel selects the execution model.
type ExecModel int

const (
	// Periodic is the WCET-driven periodic execution model.
	Periodic ExecModel = iota
	// DataDriven executes on input arrival with no deadline enforcement.
	DataDriven
	// D3Static enforces a fixed end-to-end deadline with DEHs.
	D3Static
	// D3Dynamic enforces a policy-supplied per-frame deadline.
	D3Dynamic
)

// String names the execution model.
func (m ExecModel) String() string {
	switch m {
	case Periodic:
		return "periodic"
	case DataDriven:
		return "data-driven"
	case D3Static:
		return "d3-static"
	case D3Dynamic:
		return "d3-dynamic"
	default:
		return "unknown"
	}
}

// Budget splits an end-to-end deadline across the pipeline's stages. The
// fractions follow Pylot's allocation: perception dominates, planning gets
// what perception leaves, control is fixed.
type Budget struct {
	Detection  time.Duration
	Tracking   time.Duration
	Prediction time.Duration
	Planning   time.Duration
	Control    time.Duration
}

// SplitDeadline allocates an end-to-end deadline D across stages: detection
// receives 30% (the detector is then the most accurate family member that
// fits), tracking/prediction/control have small fixed shares, and planning
// — being a true anytime algorithm — absorbs whatever remains at runtime
// (Fig. 9: "the planning component fully utilizes its time allocation").
func SplitDeadline(d time.Duration) Budget {
	return Budget{
		Detection:  d * 30 / 100,
		Tracking:   d * 6 / 100,
		Prediction: d * 8 / 100,
		Planning:   d * 53 / 100,
		Control:    d * 3 / 100,
	}
}

// Config fixes the pipeline's components for one experiment.
type Config struct {
	Exec ExecModel
	// Deadline is the static end-to-end deadline (D3Static) or the initial
	// deadline (D3Dynamic).
	Deadline time.Duration
	// Policy supplies per-frame deadlines for D3Dynamic.
	Policy policy.Policy
	// Detector is the fixed detector for Periodic/DataDriven/D3Static;
	// D3Dynamic picks per frame from the EfficientDet family.
	Detector detection.Model
	// Tracker and Predictor are fixed across models in §7.4.1 ("we adapt
	// the detector ... but keep all the other components fixed").
	Tracker   tracking.Model
	Predictor prediction.Model
	// SensorPeriod is the camera period (the simulation pipeline runs at
	// 10 Hz, matching Apollo's planning rate).
	SensorPeriod time.Duration
}

// StaticConfig returns the configuration for a static deadline D: the
// detector is the most accurate one whose median runtime fits D's
// perception budget.
func StaticConfig(exec ExecModel, d time.Duration) Config {
	det, ok := detection.BestWithin(SplitDeadline(d).Detection)
	if !ok {
		det = detection.EfficientDet[0]
	}
	return Config{
		Exec:         exec,
		Deadline:     d,
		Detector:     det,
		Tracker:      tracking.SORT,
		Predictor:    prediction.Linear,
		SensorPeriod: 100 * time.Millisecond,
	}
}

// DynamicConfig returns the D3Dynamic configuration with the §7.4 policy.
func DynamicConfig() Config {
	c := StaticConfig(D3Dynamic, 400*time.Millisecond)
	c.Exec = D3Dynamic
	c.Policy = policy.NewStoppingDistance()
	return c
}

// Frame is the per-frame environment the pipeline observes.
type Frame struct {
	// Agents is the number of agents in the scene (drives runtimes).
	Agents int
	// Speed is the AV speed (drives the prediction horizon).
	Speed float64
	// NearestAgent is the distance to the nearest tracked agent ahead,
	// when HasAgent (drives the dynamic policy).
	NearestAgent float64
	HasAgent     bool
}

// Response is the outcome of one pipeline iteration.
type Response struct {
	// Total is the end-to-end response time experienced by control.
	Total time.Duration
	// Detection, Tracking, Prediction, Planning are the per-stage times.
	Detection, Tracking, Prediction, Planning time.Duration
	// Deadline is the end-to-end deadline in force (0 when unenforced).
	Deadline time.Duration
	// Missed reports that the raw computation overran the deadline and a
	// DEH released output (D3 models only).
	Missed bool
	// StaleDetection reports that the released perception output is the
	// previous frame's (the DEH's "amend previous result" measure).
	StaleDetection bool
	// Detector is the detector that ran this frame.
	Detector detection.Model
}

// Pipeline executes frames under a Config.
type Pipeline struct {
	Cfg Config
	rng *trace.Rand

	lastDeadline time.Duration
	lastResponse time.Duration
}

// New returns a pipeline seeded for deterministic execution.
func New(cfg Config, seed int64) *Pipeline {
	if cfg.SensorPeriod == 0 {
		cfg.SensorPeriod = 100 * time.Millisecond
	}
	return &Pipeline{Cfg: cfg, rng: trace.New(seed), lastDeadline: cfg.Deadline, lastResponse: cfg.Deadline}
}

// CurrentDeadline returns the deadline currently in force.
func (p *Pipeline) CurrentDeadline() time.Duration { return p.lastDeadline }

// wcet approximates a conservative worst-case estimate from a median: the
// heavy-tailed stage distributions put p99 around 1.6x the median, and
// hard-real-time sizing adds margin on top (§3.1).
func wcet(median time.Duration) time.Duration {
	return time.Duration(float64(median) * 1.9)
}

// Step runs one pipeline iteration for the frame.
func (p *Pipeline) Step(f Frame) Response {
	switch p.Cfg.Exec {
	case Periodic:
		return p.stepPeriodic(f)
	case DataDriven:
		return p.stepDataDriven(f)
	case D3Static:
		return p.stepD3(f, p.Cfg.Deadline)
	case D3Dynamic:
		d := p.Cfg.Deadline
		if p.Cfg.Policy != nil {
			d = p.Cfg.Policy.Decide(policy.Environment{
				Speed:           f.Speed,
				AgentDistance:   f.NearestAgent,
				HasAgent:        f.HasAgent,
				CurrentResponse: p.lastResponse,
			})
		}
		return p.stepD3(f, d)
	default:
		return p.stepDataDriven(f)
	}
}

// sampleStages draws this frame's stage runtimes for a given detector and
// planning budget.
func (p *Pipeline) sampleStages(f Frame, det detection.Model, planBudget time.Duration) Response {
	horizon := prediction.HorizonForSpeed(f.Speed)
	r := Response{Detector: det}
	r.Detection = det.Runtime(p.rng, f.Agents)
	r.Tracking = p.Cfg.Tracker.Runtime(p.rng, f.Agents)
	r.Prediction = p.Cfg.Predictor.Runtime(p.rng, horizon, f.Agents)
	// The FOT planner is anytime: it consumes its budget fully (Fig. 9)
	// with small jitter from candidate granularity.
	r.Planning = p.rng.JitterDur(planBudget, 0.03)
	return r
}

// dataDrivenPlanBudget is the fixed planning allotment used when no
// deadline constrains the anytime planner (the data-driven and periodic
// configurations pick a discretization at development time).
const dataDrivenPlanBudget = 100 * time.Millisecond

// stepDataDriven sums the sampled runtimes: no enforcement, full tail.
// Without a deadline the planner runs its configured discretization to
// completion; occasionally a poor discretization yields an infeasible plan
// and the planner re-plans, which is where the data-driven model's heavy
// response-time tail comes from (§3.1).
func (p *Pipeline) stepDataDriven(f Frame) Response {
	r := p.sampleStages(f, p.Cfg.Detector, dataDrivenPlanBudget)
	if p.rng.Bernoulli(0.05) {
		r.Planning = r.Planning * 5 / 2
	}
	r.Total = r.Detection + r.Tracking + r.Prediction + r.Planning + control.Runtime
	p.lastResponse = r.Total
	return r
}

// stepPeriodic executes components at WCET-derived periods: each stage's
// output waits for the next stage's period boundary, so the end-to-end
// response accrues the period (not the runtime) of every stage plus an
// average half-period alignment delay at each boundary.
func (p *Pipeline) stepPeriodic(f Frame) Response {
	r := p.sampleStages(f, p.Cfg.Detector, dataDrivenPlanBudget)
	horizon := prediction.HorizonForSpeed(f.Speed)
	periods := []time.Duration{
		wcet(p.Cfg.Detector.MedianRuntime),
		wcet(p.Cfg.Tracker.MedianRuntime(f.Agents)),
		wcet(p.Cfg.Predictor.MedianRuntime(horizon, f.Agents)),
		wcet(dataDrivenPlanBudget),
		10 * time.Millisecond, // control at 100 Hz
	}
	var total time.Duration
	for _, period := range periods {
		// Half-period expected alignment wait plus the full period the
		// stage occupies before publishing.
		total += period + period/2
	}
	r.Total = total
	r.Deadline = 0
	p.lastResponse = r.Total
	return r
}

// deadlineMargin is the slack the runtime reserves so the DEH has time to
// release output before the end-to-end deadline expires.
const deadlineMargin = 5 * time.Millisecond

// stepD3 enforces an end-to-end deadline d with per-stage DEHs: the
// detector is chosen to fit the budget (D3Dynamic re-picks every frame),
// the anytime planner absorbs whatever time the other stages leave, and if
// the sampled computation still overruns, the DEH releases the previous
// result at the deadline, staling perception by one frame (§5.4).
func (p *Pipeline) stepD3(f Frame, d time.Duration) Response {
	p.lastDeadline = d
	budget := SplitDeadline(d)
	det := p.Cfg.Detector
	if p.Cfg.Exec == D3Dynamic {
		if m, ok := detection.BestWithin(budget.Detection); ok {
			det = m
		} else {
			det = detection.EfficientDet[0]
		}
	}
	r := p.sampleStages(f, det, 0)
	// The anytime planner fills the remaining allocation (Fig. 9),
	// stopping at candidate granularity safely inside the deadline; a miss
	// therefore only occurs when the other stages alone blow the budget.
	planBudget := d - deadlineMargin - r.Detection - r.Tracking - r.Prediction - control.Runtime
	if planBudget < 10*time.Millisecond {
		planBudget = 10 * time.Millisecond
	}
	r.Planning = time.Duration(float64(planBudget) * p.rng.Uniform(0.90, 0.99))
	r.Deadline = d
	raw := r.Detection + r.Tracking + r.Prediction + r.Planning + control.Runtime
	if raw > d {
		r.Missed = true
		r.StaleDetection = true
		r.Total = d
	} else {
		r.Total = raw
	}
	p.lastResponse = r.Total
	return r
}
