package pipeline

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/metrics"
	"github.com/erdos-go/erdos/internal/policy"
)

func frame() Frame { return Frame{Agents: 5, Speed: 12} }

func TestSplitDeadlineSumsBelowDeadline(t *testing.T) {
	for _, d := range []time.Duration{125, 200, 250, 400, 500} {
		d := d * time.Millisecond
		b := SplitDeadline(d)
		sum := b.Detection + b.Tracking + b.Prediction + b.Planning + b.Control
		if sum > d {
			t.Fatalf("split of %v sums to %v", d, sum)
		}
		if b.Detection <= 0 || b.Planning <= 0 {
			t.Fatalf("degenerate split for %v: %+v", d, b)
		}
	}
}

func TestStaticConfigDetectorScalesWithDeadline(t *testing.T) {
	d125 := StaticConfig(D3Static, 125*time.Millisecond).Detector
	d500 := StaticConfig(D3Static, 500*time.Millisecond).Detector
	if d125.MAP >= d500.MAP {
		t.Fatalf("longer deadlines must afford more accurate detectors: %s vs %s",
			d125.Name, d500.Name)
	}
	if d125.Name != "EDet2" {
		t.Fatalf("125ms configuration detector = %s, want EDet2", d125.Name)
	}
}

func TestD3StaticRespectsDeadline(t *testing.T) {
	p := New(StaticConfig(D3Static, 200*time.Millisecond), 1)
	for i := 0; i < 500; i++ {
		r := p.Step(frame())
		if r.Total > 200*time.Millisecond {
			t.Fatalf("iteration %d: response %v exceeds the 200ms deadline", i, r.Total)
		}
		if r.Deadline != 200*time.Millisecond {
			t.Fatalf("deadline reported as %v", r.Deadline)
		}
	}
}

func TestD3ResponseTracksDeadline(t *testing.T) {
	// Fig. 9: the anytime planner consumes its allocation, so the
	// end-to-end response sits just below the deadline.
	for _, d := range []time.Duration{200, 400} {
		d := d * time.Millisecond
		p := New(StaticConfig(D3Static, d), 2)
		s := metrics.NewSample()
		for i := 0; i < 200; i++ {
			s.Add(p.Step(frame()).Total)
		}
		med := s.Median()
		if med < d*7/10 || med > d {
			t.Fatalf("median response %v for deadline %v, want just below it", med, d)
		}
	}
}

func TestDataDrivenHasTail(t *testing.T) {
	p := New(StaticConfig(DataDriven, 200*time.Millisecond), 3)
	s := metrics.NewSample()
	for i := 0; i < 2000; i++ {
		s.Add(p.Step(frame()).Total)
	}
	if s.TailRatio() < 1.1 {
		t.Fatalf("data-driven p99/mean = %.2f, want a visible tail", s.TailRatio())
	}
	if s.Max() <= s.Median() {
		t.Fatal("no runtime variability in the data-driven model")
	}
}

func TestPeriodicSlowerThanDataDriven(t *testing.T) {
	pd := New(StaticConfig(Periodic, 200*time.Millisecond), 4)
	dd := New(StaticConfig(DataDriven, 200*time.Millisecond), 4)
	sp, sd := metrics.NewSample(), metrics.NewSample()
	for i := 0; i < 300; i++ {
		sp.Add(pd.Step(frame()).Total)
		sd.Add(dd.Step(frame()).Total)
	}
	if sp.Mean() < 2*sd.Mean() {
		t.Fatalf("periodic mean %v should be much slower than data-driven %v",
			sp.Mean(), sd.Mean())
	}
}

func TestDynamicAdaptsDetectorToDeadline(t *testing.T) {
	cfg := DynamicConfig()
	p := New(cfg, 5)
	// Clear road: the policy affords the accurate detector.
	far := p.Step(Frame{Agents: 4, Speed: 12})
	// Agent inside the stopping envelope: the policy tightens and the
	// pipeline swaps in a faster detector.
	near := p.Step(Frame{Agents: 4, Speed: 12, HasAgent: true, NearestAgent: 15})
	if near.Deadline >= far.Deadline {
		t.Fatalf("deadline did not tighten: %v -> %v", far.Deadline, near.Deadline)
	}
	if near.Detector.MedianRuntime >= far.Detector.MedianRuntime {
		t.Fatalf("detector did not adapt: %s -> %s", far.Detector.Name, near.Detector.Name)
	}
	if near.Total > near.Deadline {
		t.Fatalf("adapted response %v exceeds deadline %v", near.Total, near.Deadline)
	}
}

func TestMissedDeadlineStalesDetection(t *testing.T) {
	// Force a miss by running a detector whose tail cannot fit: a 40ms
	// deadline with the EDet7 detector pinned.
	cfg := StaticConfig(D3Static, 40*time.Millisecond)
	cfg.Detector = StaticConfig(D3Static, 500*time.Millisecond).Detector
	p := New(cfg, 6)
	missed := 0
	for i := 0; i < 100; i++ {
		r := p.Step(frame())
		if r.Missed {
			missed++
			if !r.StaleDetection {
				t.Fatal("missed frame must mark detection stale")
			}
			if r.Total != 40*time.Millisecond {
				t.Fatalf("missed frame response %v, want the deadline", r.Total)
			}
		}
	}
	if missed == 0 {
		t.Fatal("expected misses with an oversized detector")
	}
}

func TestMissRatioSmallForFittingConfigs(t *testing.T) {
	// §7.3: without DEH Pylot misses ~0.6% of end-to-end deadlines; a
	// fitting configuration should miss rarely, not chronically.
	p := New(StaticConfig(D3Static, 200*time.Millisecond), 7)
	missed := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if p.Step(frame()).Missed {
			missed++
		}
	}
	ratio := float64(missed) / n
	if ratio > 0.05 {
		t.Fatalf("miss ratio %.3f for a fitting configuration, want < 5%%", ratio)
	}
}

func TestExecModelString(t *testing.T) {
	names := map[ExecModel]string{
		Periodic: "periodic", DataDriven: "data-driven",
		D3Static: "d3-static", D3Dynamic: "d3-dynamic",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}

func TestPipelineDeterministicUnderSeed(t *testing.T) {
	a := New(StaticConfig(DataDriven, 200*time.Millisecond), 11)
	b := New(StaticConfig(DataDriven, 200*time.Millisecond), 11)
	for i := 0; i < 50; i++ {
		ra, rb := a.Step(frame()), b.Step(frame())
		if ra.Total != rb.Total {
			t.Fatalf("step %d differs: %v vs %v", i, ra.Total, rb.Total)
		}
	}
}

func TestPolicyIntegration(t *testing.T) {
	cfg := DynamicConfig()
	if cfg.Policy == nil {
		t.Fatal("dynamic config must carry a policy")
	}
	d := cfg.Policy.Decide(policy.Environment{Speed: 12, HasAgent: false})
	if d != 500*time.Millisecond {
		t.Fatalf("clear-road deadline = %v, want the policy maximum", d)
	}
}
