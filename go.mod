module github.com/erdos-go/erdos

go 1.22
