GO ?= go

.PHONY: check fmt vet build test race bench figures

## check: everything CI runs — formatting, vet, build, tests under -race
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: scheduler/data-plane micro-benchmarks -> BENCH_lattice.json
bench:
	$(GO) run ./cmd/erdos-bench -bench lattice -out BENCH_lattice.json

## figures: regenerate the paper's Fig. 8 messaging benchmarks
figures:
	$(GO) run ./cmd/erdos-bench
