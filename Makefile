GO ?= go

.PHONY: check fmt vet build test race fuzz analyze chaos bench bench-e2e bench-elastic bench-smoke figures

## check: everything CI runs — formatting, vet, build, tests under -race,
## the erdos-vet invariant analyzers, and a short fuzz smoke pass over the
## wire-format decoders
check: fmt vet build race fuzz analyze

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: short smoke run of the binary-codec fuzz targets; a real campaign
## raises -fuzztime and lets the corpus accumulate under testdata/.
## -fuzzminimizetime is capped so a single-worker box doesn't sit silent
## for the default 60s minimization budget when a mutation looks novel.
FUZZTIME ?= 3s
FUZZMINTIME ?= 5s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTimestampBinary -fuzztime $(FUZZTIME) -fuzzminimizetime $(FUZZMINTIME) ./internal/core/timestamp
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime $(FUZZTIME) -fuzzminimizetime $(FUZZMINTIME) ./internal/core/comm
	$(GO) test -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime $(FUZZTIME) -fuzzminimizetime $(FUZZMINTIME) ./internal/core/state
	$(GO) test -run '^$$' -fuzz FuzzShmRingDecode -fuzztime $(FUZZTIME) -fuzzminimizetime $(FUZZMINTIME) ./internal/core/comm/shm
	$(GO) test -run '^$$' -fuzz FuzzShmBroadcastRingDecode -fuzztime $(FUZZTIME) -fuzzminimizetime $(FUZZMINTIME) ./internal/core/comm/shm

## analyze: the seven D3-invariant analyzers (zerogob, wallclock, lockhold,
## statetxn, deadlinehint, bufown, goleak) over the whole module; see
## DESIGN.md and //erdos:allow for the suppression contract
analyze:
	$(GO) run ./cmd/erdos-vet ./...

## chaos: the fault-injection suite under the race detector — seeded worker
## kills and operator stalls against live clusters, asserting detection
## latency, exactly-once delivery across recovery, and DEH-surfaced misses;
## plus the elastic-membership pass (graceful join, drain, and a
## congestion-triggered scale-up on a live two-tenant cluster) and the
## relay-multicast pass: wire-frame accounting across simulated hosts and
## a relay killed mid-fanout with strict per-tick ledgers across re-election
CHAOS_COUNT ?= 3
chaos:
	$(GO) test -race -count $(CHAOS_COUNT) -run 'TestChaosWorkerCrash|TestElasticChaosJoinDrainScaleUp' ./internal/pylot
	$(GO) test -race -count $(CHAOS_COUNT) -run 'TestFailover|TestReassign|TestBroadcastRingClusterFanout|TestGracefulJoin|TestDrain|TestSubmitTenants|TestRelayMulticastCluster|TestRelayFailoverMidFanout' ./internal/core/cluster
	$(GO) test -race ./internal/core/faults

## bench: scheduler/data-plane micro-benchmarks -> BENCH_lattice.json
bench:
	$(GO) run ./cmd/erdos-bench -bench lattice -out BENCH_lattice.json

## bench-e2e: Fig. 8c scaling + urgency-inversion profile -> BENCH_e2e.json
bench-e2e:
	$(GO) run ./cmd/erdos-bench -bench e2e -out BENCH_e2e.json

## bench-smoke: CI's quick pass over the e2e benchmarks, the shm-ring
## round-trip, the single-encode fanout edge (including the host-aware
## relay tree across 3 simulated hosts), the elastic tenant-density edge,
## and the goroutine leak-drift gate — few frames and rounds, result
## discarded; catches harness rot (a broken ring, fanout fast path, relay
## tree, tenant hosting, or a Close path that strands goroutines) without
## burning minutes
bench-smoke:
	$(GO) run ./cmd/erdos-bench -bench e2e -short -out /tmp/BENCH_e2e_smoke.json
	$(GO) run ./cmd/erdos-bench -bench shm
	$(GO) run ./cmd/erdos-bench -bench fanout -short -hosts 3
	$(GO) run ./cmd/erdos-bench -bench elastic -short
	$(GO) run ./cmd/erdos-bench -bench leak

## bench-elastic: tenant-density latency edge -> BENCH_e2e.json
bench-elastic:
	$(GO) run ./cmd/erdos-bench -bench elastic -out BENCH_e2e.json

## figures: regenerate the paper's Fig. 8 messaging benchmarks
figures:
	$(GO) run ./cmd/erdos-bench
