// Traffic jam (§7.4.2): the AV merges into a stopped queue behind a
// partially-occluded motorcycle, with the adjacent lane full. This is the
// *opposite* of the person-behind-truck scenario: there is no swerve
// escape, and the motorcycle must be perceived from afar — so accurate
// (slow) perception wins and the fast, low-accuracy configuration collides.
// D3 keeps its accurate configuration because the policy sees no agent
// inside the stopping envelope until the (far-away) queue is tracked.
//
// Run with: go run ./examples/traffic_jam
package main

import (
	"fmt"

	"github.com/erdos-go/erdos/internal/pipeline"
	"github.com/erdos-go/erdos/internal/policy"
	"github.com/erdos-go/erdos/internal/sim"
)

func main() {
	for _, speed := range []float64{8, 10, 12} {
		fmt.Printf("approach speed %.0f m/s:\n", speed)
		for _, d := range policy.StaticConfigs {
			cfg := pipeline.StaticConfig(pipeline.D3Static, d)
			out := sim.RunEncounter(pipeline.New(cfg, 3), sim.TrafficJam(speed), 3)
			fmt.Printf("  static %-8v (%-5s)  %-26s detected at %.1f m\n",
				d, cfg.Detector.Name, describe(out), out.DetectionDistance)
		}
		out := sim.RunEncounter(pipeline.New(pipeline.DynamicConfig(), 3), sim.TrafficJam(speed), 3)
		fmt.Printf("  D3 dynamic          %-26s detected at %.1f m\n\n",
			describe(out), out.DetectionDistance)
	}
	fmt.Println("note the inversion vs person-behind-truck: here short deadlines")
	fmt.Println("(low-accuracy perception) increase collision speed, and accurate")
	fmt.Println("configurations stop reliably — no single static point wins both.")
}

func describe(o sim.Outcome) string {
	if o.Collided {
		return fmt.Sprintf("COLLISION at %.1f m/s", o.CollisionSpeed)
	}
	return fmt.Sprintf("avoided (%s)", o.Avoided)
}
