// Quickstart: a minimal D3 application on the ERDOS runtime.
//
// A camera source feeds a detector operator that must answer within a
// 30 ms timestamp deadline. Frame 3 simulates runtime variability (the
// detector stalls); the deadline exception handler reacts by re-releasing
// the previous detection so downstream computation is never blocked (§5.4).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/core/erdos"
)

// Frame is a camera image; Detection is the perception output.
type Frame struct{ ID int }
type Detection struct {
	Frame int
	Label string
}

// DetectorState remembers the last released detection so the handler can
// amend it on a miss (the "skipping" proactive strategy of §5.3).
type DetectorState struct{ Last Detection }

func main() {
	g := erdos.NewGraph()
	camera := erdos.IngestStream[Frame](g, "camera")
	detections := erdos.AddStream[Detection](g, "detections")

	op := g.Operator("detector")
	out := erdos.Output(op, detections)
	erdos.WithState(op, &DetectorState{}, func(s *DetectorState) *DetectorState {
		c := *s
		return &c
	})
	erdos.Input(op, camera, func(ctx *erdos.Context, t erdos.Timestamp, f Frame) {
		if f.ID == 3 {
			// Environment-dependent runtime (C2): this frame is slow.
			time.Sleep(60 * time.Millisecond) //erdos:allow wallclock the sleep models environment-dependent compute, not a timing decision
		}
		if ctx.Aborted() {
			return // the deadline handler took over this timestamp
		}
		st := erdos.StateOf[*DetectorState](ctx)
		st.Last = Detection{Frame: f.ID, Label: "pedestrian"}
		_ = ctx.Send(out, t, st.Last) //erdos:allow zerogob single-process demo; Detection never crosses a transport
	})
	op.OnWatermark(func(ctx *erdos.Context) {})
	op.TimestampDeadline("detector-30ms", erdos.Static(30*time.Millisecond), erdos.Abort,
		func(h *erdos.HandlerContext) {
			// Reactive measure: release the previous result immediately.
			prev := Detection{Frame: -1, Label: "none"}
			if s, ok := h.Committed.(*DetectorState); ok {
				prev = s.Last
			}
			fmt.Printf("  [DEH] deadline missed for %v -> re-releasing frame %d's detection\n",
				h.Miss.Timestamp, prev.Frame)
			_ = h.Send(out, h.Miss.Timestamp, prev) //erdos:allow zerogob single-process demo; Detection never crosses a transport
			_ = h.SendWatermark(out, h.Miss.Timestamp)
		})
	op.Build()

	rt, err := g.RunLocal()
	if err != nil {
		panic(err)
	}
	defer rt.Stop()

	sink, err := erdos.Collect(rt, detections)
	if err != nil {
		panic(err)
	}
	cam, err := erdos.Writer(rt, camera)
	if err != nil {
		panic(err)
	}

	for id := 1; id <= 5; id++ {
		ts := erdos.T(uint64(id))
		_ = cam.Send(ts, Frame{ID: id}) //erdos:allow zerogob single-process demo; Frame never crosses a transport
		_ = cam.SendWatermark(ts)
		time.Sleep(80 * time.Millisecond) // 12.5 Hz camera
	}
	rt.Quiesce()
	rt.WaitHandlers()

	fmt.Println("detections released downstream:")
	for _, d := range sink.Data() {
		fmt.Printf("  %v frame=%d label=%s\n", d.Time, d.Value.Frame, d.Value.Label)
	}
	stats := rt.Stats()
	fmt.Printf("deadline misses: %d, handler runs: %d\n", stats.DeadlineMisses, stats.HandlerRuns)
}
