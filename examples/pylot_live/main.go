// Pylot live: the full AV pipeline (Fig. 1) running as real operators on
// the ERDOS runtime, with the deadline policy pDP as an operator subgraph
// closing the feedback loop of Fig. 4. An agent approaches the vehicle
// frame by frame; watch pDP tighten the end-to-end allocation and the
// perception module swap detectors as the stopping envelope shrinks.
//
// Run with: go run ./examples/pylot_live
package main

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/pylot"
)

func main() {
	g := erdos.NewGraph()
	h := pylot.Build(g, pylot.Config{TimeScale: 20, TargetSpeed: 12, Seed: 1})
	rt, err := g.RunLocal(erdos.WithThreads(8))
	if err != nil {
		panic(err)
	}
	defer rt.Stop()

	plans, _ := erdos.Collect(rt, h.Plans)
	deadlines, _ := erdos.Collect(rt, h.Deadlines)
	cmds, _ := erdos.Collect(rt, h.Commands)
	cam, _ := erdos.Writer(rt, h.Camera)

	fmt.Println("frame  agent-dist  pDP-deadline  plan-target  command")
	const frames = 12
	for f := 1; f <= frames; f++ {
		ts := erdos.T(uint64(f))
		dist := 80.0 - 6.5*float64(f-1)
		frame := pylot.CameraFrame{Seq: uint64(f), EgoSpeed: 12}
		if dist > 0 {
			frame.Agents = []tracking.Observation{{X: dist, Y: 0}}
		}
		_ = cam.Send(ts, frame)
		_ = cam.SendWatermark(ts)
		time.Sleep(12 * time.Millisecond) // ~scaled 10 Hz camera
	}
	rt.Quiesce()

	dls := deadlines.Data()
	pls := plans.Data()
	cs := cmds.Data()
	for i := 0; i < frames; i++ {
		dist := 80.0 - 6.5*float64(i)
		dl, plan, cmd := "-", "-", "-"
		for _, d := range dls {
			if d.Time.L == uint64(i+1) {
				dl = d.Value.String()
			}
		}
		for _, p := range pls {
			if p.Time.L == uint64(i+1) {
				plan = fmt.Sprintf("%+.2fm", p.Value.Trajectory.Target)
			}
		}
		for _, c := range cs {
			if c.Time.L == uint64(i+1) {
				cmd = fmt.Sprintf("steer %+.2f thr %.2f brake %.2f", c.Value.Steer, c.Value.Throttle, c.Value.Brake)
			}
		}
		fmt.Printf("%5d  %7.1f m   %-12s  %-11s  %s\n", i+1, dist, dl, plan, cmd)
	}
}
