// Deadline policy as an operator subgraph (§5.2): this example builds a
// small pipeline on the ERDOS runtime in which the deadline policy pDP is
// itself an operator. It receives the ego vehicle's state on a stream,
// computes the end-to-end deadline with the stopping-distance policy of
// §7.4, and publishes per-timestamp deadline allocations on a deadline
// stream that the planner's timestamp deadline consumes — the feedback loop
// of Fig. 4 realized with ordinary streams.
//
// Run with: go run ./examples/deadline_policy
package main

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/policy"
)

// EgoState is what pDP observes about the environment.
type EgoState struct {
	Speed         float64 // m/s
	AgentDistance float64 // m; <0 means no agent tracked
}

func main() {
	g := erdos.NewGraph()
	ego := erdos.IngestStream[EgoState](g, "ego-state")
	deadlines := erdos.AddStream[time.Duration](g, "deadlines")
	plans := erdos.AddStream[string](g, "plans")

	// pDP: an ordinary operator computing the §7.4 policy. Modularity
	// (§5.2) falls out of the graph abstraction: a module-specific policy
	// would simply be another operator consuming this one's output.
	pdp := policy.NewStoppingDistance()
	pol := g.Operator("pDP")
	dOut := erdos.Output(pol, deadlines)
	erdos.Input(pol, ego, func(ctx *erdos.Context, t erdos.Timestamp, s EgoState) {
		d := pdp.Decide(policy.Environment{
			Speed:           s.Speed,
			AgentDistance:   s.AgentDistance,
			HasAgent:        s.AgentDistance >= 0,
			CurrentResponse: 300 * time.Millisecond,
		})
		_ = ctx.Send(dOut, t, d)
	})
	pol.Build()

	// The planner consumes the dynamic deadline: ERDOS synchronizes the
	// allocation for each timestamp with the planner's computation and
	// exposes it through the Context (§4.3).
	dyn := erdos.DynamicDeadline(g, deadlines, 500*time.Millisecond)
	planner := g.Operator("planner")
	pOut := erdos.Output(planner, plans)
	erdos.Input(planner, ego, nil)
	planner.OnWatermark(func(ctx *erdos.Context) {
		rel, _, _ := ctx.Deadline()
		_ = ctx.Send(pOut, ctx.Timestamp, fmt.Sprintf("plan within %v", rel)) //erdos:allow zerogob single-process demo; the plan string never crosses a transport
	})
	planner.TimestampDeadline("planner-e2e", dyn, erdos.Continue, func(h *erdos.HandlerContext) {
		fmt.Printf("  [DEH] planner missed %v at %v\n", h.Miss.Relative, h.Miss.Timestamp)
	})
	planner.Build()

	rt, err := g.RunLocal()
	if err != nil {
		panic(err)
	}
	defer rt.Stop()
	sink, err := erdos.Collect(rt, plans)
	if err != nil {
		panic(err)
	}
	w, err := erdos.Writer(rt, ego)
	if err != nil {
		panic(err)
	}

	// Drive: open road, then an agent closing in, then clear again.
	states := []EgoState{
		{Speed: 12, AgentDistance: -1},
		{Speed: 12, AgentDistance: 90},
		{Speed: 12, AgentDistance: 45},
		{Speed: 12, AgentDistance: 24},
		{Speed: 12, AgentDistance: 16},
		{Speed: 8, AgentDistance: 30},
		{Speed: 8, AgentDistance: -1},
	}
	for i, s := range states {
		ts := erdos.T(uint64(i + 1))
		_ = w.Send(ts, s) //erdos:allow zerogob single-process demo; EgoState never crosses a transport
		_ = w.SendWatermark(ts)
	}
	rt.Quiesce()

	fmt.Println("per-timestamp deadline allocations computed by pDP:")
	for i, p := range sink.Data() {
		s := states[i]
		agent := "none"
		if s.AgentDistance >= 0 {
			agent = fmt.Sprintf("%.0f m", s.AgentDistance)
		}
		fmt.Printf("  %v speed=%4.0f m/s agent=%-6s -> %s\n", p.Time, s.Speed, agent, p.Value)
	}
}
