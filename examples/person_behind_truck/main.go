// Person behind truck (§7.4.2): a pedestrian steps into the AV's lane from
// behind a parked truck. The encounter rewards the *fastest* response — an
// emergency swerve is only possible if the pipeline reacts in time — so
// static configurations with long deadlines (accurate but slow) collide,
// while D3's dynamic policy tightens the deadline the moment the person is
// tracked and swerves.
//
// Run with: go run ./examples/person_behind_truck
package main

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/pipeline"
	"github.com/erdos-go/erdos/internal/policy"
	"github.com/erdos-go/erdos/internal/sim"
)

func main() {
	const speed = 12.0 // m/s
	fmt.Printf("scenario: person-behind-truck at %.0f m/s (visibility 20 m, emerging occlusion)\n\n", speed)
	fmt.Printf("%-22s %-28s %s\n", "configuration", "outcome", "first detection")
	fmt.Printf("%-22s %-28s %s\n", "-------------", "-------", "---------------")

	for _, d := range policy.StaticConfigs {
		cfg := pipeline.StaticConfig(pipeline.D3Static, d)
		out := sim.RunEncounter(pipeline.New(cfg, 3), sim.PersonBehindTruck(speed), 3)
		fmt.Printf("%-22s %-28s %.1f m (%s)\n",
			fmt.Sprintf("static %v", d), describe(out), out.DetectionDistance, cfg.Detector.Name)
	}
	out := sim.RunEncounter(pipeline.New(pipeline.DynamicConfig(), 3), sim.PersonBehindTruck(speed), 3)
	fmt.Printf("%-22s %-28s %.1f m (adaptive)\n", "D3 dynamic", describe(out), out.DetectionDistance)

	fmt.Println("\nD3 timeline (deadline tightens once the person is tracked):")
	for i := range out.Responses {
		fmt.Printf("  t=%-6s deadline=%-8s response=%-10s detector=%s\n",
			time.Duration(i)*100*time.Millisecond, out.Deadlines[i], out.Responses[i], out.Detectors[i])
	}
}

func describe(o sim.Outcome) string {
	if o.Collided {
		return fmt.Sprintf("COLLISION at %.1f m/s", o.CollisionSpeed)
	}
	return fmt.Sprintf("avoided (%s)", o.Avoided)
}
