package repro

import (
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/baselines"
	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/timestamp"
	"github.com/erdos-go/erdos/internal/pipeline"
	"github.com/erdos-go/erdos/internal/policy"
	"github.com/erdos-go/erdos/internal/sim"
)

// Ablations of the design choices DESIGN.md calls out. Each benchmark
// compares the chosen design against its alternative and reports both.

// BenchmarkAblationZeroCopyVsCopy isolates the zero-copy intra-worker
// messaging choice (§6.1): the same 6 MB broadcast to 5 receivers with
// reference passing vs per-subscriber copies.
func BenchmarkAblationZeroCopyVsCopy(b *testing.B) {
	payload := make([]byte, 6<<20)
	noop := func(uint64, []byte) {}
	recvs := []baselines.Receiver{noop, noop, noop, noop, noop}
	zero := baselines.NewErdosIntra(recvs)
	cp := baselines.NewCopyIntra(recvs)

	b.Run("zero-copy", func(b *testing.B) {
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			_ = zero.Publish(payload)
		}
	})
	b.Run("copy-per-subscriber", func(b *testing.B) {
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			_ = cp.Publish(payload)
		}
	})
}

// BenchmarkAblationTimerVsPolling isolates the deadline-enforcement choice
// (§6.3): a single re-targeted timer over the armed-deadline heap vs a
// fixed-rate polling loop, measured as arm+satisfy throughput.
func BenchmarkAblationTimerVsPolling(b *testing.B) {
	b.Run("timer-queue", func(b *testing.B) {
		mon := deadline.NewMonitor(deadline.Real{})
		defer mon.Stop()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, _ := mon.Arm(time.Second, nil)
			a.Satisfy()
		}
	})
	b.Run("polling", func(b *testing.B) {
		al := baselines.NewActionlib(time.Millisecond)
		defer al.Stop()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := al.Arm(time.Second, nil)
			g.Cancel()
		}
	})
}

// BenchmarkAblationSnapshotVsLogState isolates the state-management choice
// (§5.4): the default time-versioned snapshot store vs the CRDT-style
// operation-log store, on a planner-like state that appends one waypoint
// batch per timestamp.
func BenchmarkAblationSnapshotVsLogState(b *testing.B) {
	type waypoints struct{ Points []int }
	const preload = 256 // committed timestamps before measurement

	b.Run("snapshot", func(b *testing.B) {
		st := state.Typed(&waypoints{}, func(w *waypoints) *waypoints {
			return &waypoints{Points: append([]int(nil), w.Points...)}
		})
		for l := uint64(1); l <= preload; l++ {
			v := st.View(timestamp.New(l)).(*waypoints)
			v.Points = append(v.Points, int(l))
			st.Commit(timestamp.New(l), v)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := uint64(preload + i + 1)
			v := st.View(timestamp.New(l)).(*waypoints)
			v.Points = append(v.Points, int(l))
			st.Commit(timestamp.New(l), v)
			st.GC(timestamp.New(l - 16))
		}
	})
	b.Run("oplog", func(b *testing.B) {
		st := state.NewLog(
			func() any { return &waypoints{} },
			func(s, op any) {
				w := s.(*waypoints)
				w.Points = append(w.Points, op.(int))
			},
		)
		for l := uint64(1); l <= preload; l++ {
			v := st.View(timestamp.New(l)).(*state.LogView)
			v.Record(int(l))
			st.Commit(timestamp.New(l), v)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := uint64(preload + i + 1)
			v := st.View(timestamp.New(l)).(*state.LogView)
			v.Record(int(l))
			st.Commit(timestamp.New(l), v)
			st.GC(timestamp.New(l - 16))
		}
	})
}

// BenchmarkAblationSequentialVsParallelMessages isolates the lattice's
// intra-operator parallelism choice (§6.2) with CPU-bound data callbacks.
func BenchmarkAblationSequentialVsParallelMessages(b *testing.B) {
	run := func(b *testing.B, parallel bool) {
		g := erdos.NewGraph()
		in := erdos.IngestStream[int](g, "in")
		op := g.Operator("worker")
		var mu sync.Mutex
		sum := 0
		erdos.Input(op, in, func(ctx *erdos.Context, t erdos.Timestamp, v int) {
			// ~10us of work
			acc := 0
			for i := 0; i < 5000; i++ {
				acc += i ^ v
			}
			mu.Lock()
			sum += acc
			mu.Unlock()
		})
		op.OnWatermark(func(ctx *erdos.Context) {})
		if parallel {
			op.ParallelMessages()
		}
		op.Build()
		rt, err := g.RunLocal(erdos.WithThreads(8))
		if err != nil {
			b.Fatal(err)
		}
		defer rt.Stop()
		w, _ := erdos.Writer(rt, in)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts := erdos.T(uint64(i + 1))
			for m := 0; m < 16; m++ {
				_ = w.Send(ts, m)
			}
			_ = w.SendWatermark(ts)
		}
		rt.Quiesce()
	}
	b.Run("sequential", func(b *testing.B) { run(b, false) })
	b.Run("parallel-messages", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPolicyRecomputeFrequency isolates pDP adaptivity (§5.2):
// recomputing the deadline every frame vs every 4th/16th frame, measured as
// collisions over a 25 km suite. Less frequent recomputation trades policy
// overhead against responsiveness to the environment.
func BenchmarkAblationPolicyRecomputeFrequency(b *testing.B) {
	for _, every := range []int{1, 4, 16} {
		every := every
		name := map[int]string{1: "every-frame", 4: "every-4th", 16: "every-16th"}[every]
		b.Run(name, func(b *testing.B) {
			var collisions int
			for i := 0; i < b.N; i++ {
				cfg := pipeline.DynamicConfig()
				cfg.Policy = &decimatedPolicy{inner: cfg.Policy, every: every}
				suite := sim.ChallengeSuite(42, 25)
				collisions = sim.RunSuite(cfg, suite, 1).Collisions
			}
			b.ReportMetric(float64(collisions), "collisions")
		})
	}
}

// decimatedPolicy recomputes its inner policy's decision only every N-th
// query, holding the last allocation in between.
type decimatedPolicy struct {
	inner policy.Policy
	every int
	n     int
	last  time.Duration
	has   bool
}

func (p *decimatedPolicy) Decide(env policy.Environment) time.Duration {
	p.n++
	if !p.has || p.n%p.every == 0 {
		p.last = p.inner.Decide(env)
		p.has = true
	}
	return p.last
}

// BenchmarkAblationDEHOnOff isolates the deadline-exception-handler choice
// over the drive: identical configuration with enforcement (D3Static) and
// without (DataDriven), reporting collisions.
func BenchmarkAblationDEHOnOff(b *testing.B) {
	suite := sim.ChallengeSuite(42, 25)
	b.Run("with-DEH", func(b *testing.B) {
		var c int
		for i := 0; i < b.N; i++ {
			c = sim.RunSuite(pipeline.StaticConfig(pipeline.D3Static, 200*time.Millisecond), suite, 1).Collisions
		}
		b.ReportMetric(float64(c), "collisions")
	})
	b.Run("without-DEH", func(b *testing.B) {
		var c int
		for i := 0; i < b.N; i++ {
			c = sim.RunSuite(pipeline.StaticConfig(pipeline.DataDriven, 200*time.Millisecond), suite, 1).Collisions
		}
		b.ReportMetric(float64(c), "collisions")
	})
}
