// erdos-vet runs the D3-invariant analyzers (internal/analysis) over the
// whole module and exits nonzero on any unsuppressed finding. It is wired
// into `make analyze` and the CI erdos-vet job, so the build refuses code
// that violates the runtime's contracts: zero-gob payloads, deterministic
// callbacks, non-blocking critical sections, transactional operator state,
// and deadline-hinted transport sends.
//
// Usage:
//
//	erdos-vet [-v] [dir]
//
// dir defaults to the current directory; the module containing it is
// analyzed in full (testdata and test files excluded). -v also prints
// findings suppressed by //erdos:allow directives, with their reasons.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/erdos-go/erdos/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "also print //erdos:allow-suppressed findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: erdos-vet [-v] [dir]\n\nAnalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept the conventional ./... spelling: the run is always
		// whole-module.
		dir = strings.TrimSuffix(args[0], "...")
		if dir == "" || dir == "./" {
			dir = "."
		}
	}

	l, err := analysis.NewLoader(dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(l, pkgs, analysis.All)
	if err != nil {
		fatal(err)
	}

	bad := 0
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(l.ModDir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		if d.Suppressed {
			if *verbose {
				fmt.Printf("%s: [%s] allowed (%s): %s\n", pos, d.Analyzer, d.AllowReason, d.Message)
			}
			continue
		}
		bad++
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "erdos-vet: %d finding(s) in %d package(s) analyzed\n", bad, len(pkgs))
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("erdos-vet: %d packages clean (%d analyzer(s))\n", len(pkgs), len(analysis.All))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "erdos-vet:", err)
	os.Exit(1)
}
