// erdos-vet runs the D3-invariant analyzers (internal/analysis) over the
// whole module and exits nonzero on any unsuppressed finding. It is wired
// into `make analyze` and the CI erdos-vet job, so the build refuses code
// that violates the runtime's contracts: zero-gob payloads, deterministic
// callbacks, non-blocking critical sections, transactional operator state,
// deadline-hinted transport sends, pooled-buffer ownership balance, and
// stoppable goroutines.
//
// Usage:
//
//	erdos-vet [-v] [-json] [dir]
//
// dir defaults to the current directory; the module containing it is
// analyzed in full (testdata and test files excluded). Analyzers run
// concurrently per package over one shared type-checked load. -v also
// prints findings suppressed by //erdos:allow directives (with their
// reasons) and per-analyzer wall time. -json emits the findings as a JSON
// array on stdout for tooling; the CI problem matcher consumes the default
// text format instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/erdos-go/erdos/internal/analysis"
)

// finding is the JSON shape of one diagnostic: position split into fields,
// paths relative to the module root.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed findings carry the //erdos:allow reason that excused them.
	Suppressed  bool   `json:"suppressed,omitempty"`
	AllowReason string `json:"allowReason,omitempty"`
}

func main() {
	verbose := flag.Bool("v", false, "also print //erdos:allow-suppressed findings and per-analyzer timings")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: erdos-vet [-v] [-json] [dir]\n\nAnalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept the conventional ./... spelling: the run is always
		// whole-module.
		dir = strings.TrimSuffix(args[0], "...")
		if dir == "" || dir == "./" {
			dir = "."
		}
	}

	l, err := analysis.NewLoader(dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		fatal(err)
	}
	diags, timings, err := analysis.RunTimed(l, pkgs, analysis.All)
	if err != nil {
		fatal(err)
	}

	relPath := func(name string) string {
		if rel, err := filepath.Rel(l.ModDir, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}

	bad := 0
	var out []finding
	for _, d := range diags {
		if d.Suppressed && !*verbose && !*jsonOut {
			continue
		}
		f := finding{
			File:        relPath(d.Pos.Filename),
			Line:        d.Pos.Line,
			Column:      d.Pos.Column,
			Analyzer:    d.Analyzer,
			Message:     d.Message,
			Suppressed:  d.Suppressed,
			AllowReason: d.AllowReason,
		}
		if !d.Suppressed {
			bad++
		}
		if *jsonOut {
			out = append(out, f)
			continue
		}
		if d.Suppressed {
			fmt.Printf("%s:%d:%d: [%s] allowed (%s): %s\n", f.File, f.Line, f.Column, f.Analyzer, f.AllowReason, f.Message)
		} else {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if *jsonOut {
		if out == nil {
			out = []finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	}
	if *verbose {
		// Cumulative per-analyzer wall time across packages; analyzers run
		// concurrently, so these rank cost rather than summing to the total.
		names := make([]string, 0, len(timings))
		for name := range timings {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return timings[names[i]] > timings[names[j]] })
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "erdos-vet: %-14s %8.1fms\n", name, float64(timings[name].Microseconds())/1000)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "erdos-vet: %d finding(s) in %d package(s) analyzed\n", bad, len(pkgs))
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "erdos-vet: %d packages clean (%d analyzer(s))\n", len(pkgs), len(analysis.All))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "erdos-vet:", err)
	os.Exit(1)
}
