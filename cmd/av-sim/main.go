// Command av-sim drives the Pylot-style pipeline across driving scenarios
// under a chosen execution model, printing per-encounter outcomes and
// aggregate statistics.
//
// Usage:
//
//	av-sim -model d3-dynamic -km 50
//	av-sim -model d3-static -deadline 200ms -scenario person-behind-truck -speed 12
//	av-sim -model periodic -scenario traffic-jam -speed 10 -v
//	av-sim -fleet 3
//
// -fleet N ignores the scenario flags and instead hosts N pylot pipelines
// as tenants of an elastic cluster (one deliberately overloaded), printing
// the autoscale events, per-tenant urgency misses, and the healthy
// tenants' control latency.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/erdos-go/erdos/internal/experiments"
	"github.com/erdos-go/erdos/internal/metrics"
	"github.com/erdos-go/erdos/internal/pipeline"
	"github.com/erdos-go/erdos/internal/sim"
)

func main() {
	model := flag.String("model", "d3-dynamic", "execution model: periodic | data-driven | d3-static | d3-dynamic")
	deadline := flag.Duration("deadline", 200*time.Millisecond, "end-to-end deadline for d3-static")
	scenario := flag.String("scenario", "suite", "suite | person-behind-truck | traffic-jam | jaywalker | freeway-obstacle | occluded-cyclist")
	speed := flag.Float64("speed", 12, "approach speed for single scenarios (m/s)")
	km := flag.Float64("km", 50, "drive length for -scenario suite")
	seed := flag.Int64("seed", 42, "workload seed")
	fleet := flag.Int("fleet", 0, "host N pylot tenants (>= 2) on an elastic autoscaling cluster instead of running scenarios")
	verbose := flag.Bool("v", false, "print per-frame pipeline behaviour")
	flag.Parse()

	if *fleet > 0 {
		runFleet(*fleet)
		return
	}

	var cfg pipeline.Config
	switch *model {
	case "periodic":
		cfg = pipeline.StaticConfig(pipeline.Periodic, *deadline)
	case "data-driven":
		cfg = pipeline.StaticConfig(pipeline.DataDriven, *deadline)
	case "d3-static":
		cfg = pipeline.StaticConfig(pipeline.D3Static, *deadline)
	case "d3-dynamic":
		cfg = pipeline.DynamicConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	if *scenario == "suite" {
		suite := sim.ChallengeSuite(*seed, *km)
		res := sim.RunSuite(cfg, suite, 1)
		t := metrics.NewTable("metric", "value")
		t.Row("model", *model)
		t.Row("drive", fmt.Sprintf("%.0f km, %d encounters", *km, res.Encounters))
		t.Row("collisions", res.Collisions)
		t.Row("mean impact speed", fmt.Sprintf("%.1f m/s", res.CollisionSpeed))
		t.Row("pipeline frames", res.Frames)
		t.Row("deadline misses", res.Misses)
		fmt.Print(t.String())
		return
	}

	makers := map[string]func(float64) sim.Hazard{
		"person-behind-truck": sim.PersonBehindTruck,
		"traffic-jam":         sim.TrafficJam,
		"jaywalker":           sim.Jaywalker,
		"freeway-obstacle":    sim.FreewayObstacle,
		"occluded-cyclist":    sim.OccludedCyclist,
	}
	mk, ok := makers[*scenario]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	out := sim.RunEncounter(pipeline.New(cfg, *seed), mk(*speed), *seed)
	t := metrics.NewTable("metric", "value")
	t.Row("scenario", *scenario)
	t.Row("speed", fmt.Sprintf("%.1f m/s", *speed))
	if out.Collided {
		t.Row("outcome", fmt.Sprintf("COLLISION at %.1f m/s", out.CollisionSpeed))
	} else {
		t.Row("outcome", fmt.Sprintf("avoided (%s)", out.Avoided))
	}
	t.Row("first detection", fmt.Sprintf("%.1f m", out.DetectionDistance))
	t.Row("brake latency", out.BrakeLatency)
	t.Row("frames", out.Frames)
	fmt.Print(t.String())
	if *verbose {
		ft := metrics.NewTable("frame", "deadline", "response", "detector")
		for i := range out.Responses {
			ft.Row(i, out.Deadlines[i], out.Responses[i], out.Detectors[i])
		}
		fmt.Print(ft.String())
	}
}

// runFleet hosts n pylot tenants on an elastic cluster (tenant t0
// overloaded on purpose) and prints the elastic-membership outcome.
func runFleet(n int) {
	fmt.Printf("hosting %d pylot tenants on an elastic cluster (t0 overloaded)...\n", n)
	rep, err := experiments.RunFleet(n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(1)
	}
	t := metrics.NewTable("metric", "value")
	t.Row("tenants", rep.Tenants)
	t.Row("final workers", strings.Join(rep.Workers, " "))
	t.Row("scale-ups", rep.ScaleUps)
	t.Row("migrations", rep.Migrations)
	t.Row("joins", rep.Joins)
	t.Row("drains", rep.Drains)
	for i := 0; i < rep.Tenants; i++ {
		name := fmt.Sprintf("t%d", i)
		t.Row("urgency misses "+name, rep.TenantMisses[name])
	}
	t.Row("healthy control p50", fmt.Sprintf("%.2f ms", rep.ControlP50Ms))
	t.Row("healthy control p99", fmt.Sprintf("%.2f ms", rep.ControlP99Ms))
	fmt.Print(t.String())
}
