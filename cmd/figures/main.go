// Command figures regenerates the data behind every figure of the paper's
// evaluation and prints the same rows/series the paper reports.
//
// Usage:
//
//	figures                 # regenerate everything
//	figures -fig 11         # one figure (2a 2b 2c 2d 3 8a 8b 8c 9 10 11 12 13 14 policy)
//	figures -km 50 -seed 42 # drive length and seed for the suite figures
//	figures -csv out/       # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/erdos-go/erdos/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (2a,2b,2c,2d,3,8a,8b,8c,9,10,11,12,13,14,policy,failover,all)")
	seed := flag.Int64("seed", 42, "seed for the synthetic workloads")
	km := flag.Float64("km", 50, "drive length for the suite figures")
	msgs := flag.Int("msgs", 50, "messages per point for the messaging figures")
	csvDir := flag.String("csv", "", "directory to write CSV data into")
	flag.Parse()

	emit := func(name, body string) {
		fmt.Printf("=== Figure %s ===\n%s\n", name, body)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, "fig"+name+".txt")
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	want := func(name string) bool { return *fig == "all" || strings.EqualFold(*fig, name) }

	if want("2a") {
		emit("2a (object detection: no silver bullet)", experiments.Fig2aDetectorChoice(*seed).Render())
	}
	if want("2b") {
		emit("2b (tracker runtime vs agents)", experiments.Fig2bTrackerRuntime(*seed).Render())
	}
	if want("2c") {
		emit("2c (prediction runtime vs horizon)", experiments.Fig2cPredictionHorizon(*seed).Render())
	}
	if want("2d") {
		emit("2d (planning runtime vs comfort)", experiments.Fig2dPlanningComfort().Render())
	}
	if want("3") {
		emit("3 (Apollo-style response variability)", experiments.Fig3ResponseVariability(*seed).Render())
	}
	if want("8a") {
		emit("8a (message delay vs size)", experiments.Fig8aMessageDelay(*msgs).Render())
	}
	if want("8b") {
		emit("8b (operator fanout delay)", experiments.Fig8bFanout(*msgs).Render())
	}
	if want("8c") {
		emit("8c (sensor scaling)", experiments.Fig8cSensorScaling(*msgs).Render())
	}
	if want("9") {
		emit("9 (meeting dynamic deadlines)", experiments.Fig9MeetingDeadlines(*seed).Render())
	}
	if want("10") {
		emit("10-left (handler invocation delay)", experiments.Fig10HandlerDelay(200).Render())
		emit("10-right (DEH effect over the drive)", experiments.Fig10DEHEffect(*seed, *km).Render())
	}
	if want("policy") {
		emit("policy-overhead (§7.3 no-op pDP)", experiments.PolicyMechanismOverhead(300).Render())
	}
	var best experiments.Fig11Result
	if want("11") || want("12") {
		best = experiments.Fig11Collisions(*seed, *km)
	}
	if want("11") {
		emit("11 (collisions per execution model)", best.Render())
	}
	if want("12") {
		emit("12 (response-time histogram)", experiments.Fig12ResponseHistogram(*seed, *km, best.BestStaticDeadline).Render())
	}
	if want("13") {
		emit("13 (scenario grids)", experiments.Fig13ScenarioGrid(*seed).Render())
	}
	if want("14") {
		emit("14 (adapting to deadlines)", experiments.Fig14AdaptTimeline(6).Render())
	}
	if want("failover") {
		emit("failover (reaction time vs heartbeat period)", experiments.FailoverReaction(5).Render())
	}
}
