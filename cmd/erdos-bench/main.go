// Command erdos-bench runs the §7.2 messaging benchmarks (Fig. 8):
// callback-invocation delay across message sizes, operator fanout, and
// synthetic-pipeline sensor scaling, comparing ERDOS' messaging path
// against the ROS-, ROS2- and Flink-style baselines. It also runs the
// scheduler/data-plane micro-benchmarks and records them to
// BENCH_lattice.json so the repo keeps a perf trajectory across PRs.
//
// Usage:
//
//	erdos-bench                 # the three Fig. 8 benchmarks
//	erdos-bench -bench fanout   # Fig. 8b + single-encode fanout edge -> BENCH_comm.json
//	erdos-bench -bench fanout -short  # fanout smoke mode for CI (no file written)
//	erdos-bench -bench lattice  # scheduler micro-benchmarks -> BENCH_lattice.json
//	erdos-bench -bench comm     # data-plane micro-benchmarks -> BENCH_comm.json
//	erdos-bench -bench e2e      # Fig. 8c + urgency inversion -> BENCH_e2e.json
//	erdos-bench -bench e2e -short  # smoke mode for CI
//	erdos-bench -bench elastic  # tenant-density latency edge -> BENCH_e2e.json
//	erdos-bench -bench elastic -short  # elastic smoke mode for CI (no file written)
//	erdos-bench -bench leak     # goroutine leak-drift gate (no file written)
//	erdos-bench -msgs 200       # more samples per point
//	erdos-bench -bench lattice -out other.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/erdos-go/erdos/internal/experiments"
)

// latticeBenchFile is the JSON shape of BENCH_lattice.json.
type latticeBenchFile struct {
	GeneratedBy string                         `json:"generated_by"`
	Date        string                         `json:"date"`
	GoVersion   string                         `json:"go_version"`
	NumCPU      int                            `json:"num_cpu"`
	GoMaxProcs  int                            `json:"go_max_procs"`
	PreChange   []experiments.MicroBenchResult `json:"pre_change_seed_scheduler"`
	PostChange  []experiments.MicroBenchResult `json:"post_change"`
	Speedup     map[string]map[string]float64  `json:"speedup_vs_pre_change"`
}

func runLatticeBench(out string) error {
	fmt.Println("=== scheduler & data-plane micro-benchmarks ===")
	post := experiments.LatticeMicroBench()
	pre := experiments.PreChangeLatticeBaseline
	preByName := map[string]experiments.MicroBenchResult{}
	for _, r := range pre {
		preByName[r.Name] = r
	}
	speedup := map[string]map[string]float64{}
	for _, r := range post {
		fmt.Printf("%-26s %12.1f ns/op %8d B/op %5d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if p, ok := preByName[r.Name]; ok && r.NsPerOp > 0 {
			speedup[r.Name] = map[string]float64{
				"throughput": p.NsPerOp / r.NsPerOp,
				"allocs":     float64(p.AllocsPerOp) / maxf(float64(r.AllocsPerOp), 1),
			}
			fmt.Printf("%-26s %12.2fx vs pre-change scheduler\n", "", p.NsPerOp/r.NsPerOp)
		}
	}
	f := latticeBenchFile{
		GeneratedBy: "cmd/erdos-bench -bench lattice",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		PreChange:   pre,
		PostChange:  post,
		Speedup:     speedup,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// commBenchFile is the JSON shape of BENCH_comm.json.
type commBenchFile struct {
	GeneratedBy string                         `json:"generated_by"`
	Date        string                         `json:"date"`
	GoVersion   string                         `json:"go_version"`
	NumCPU      int                            `json:"num_cpu"`
	GoMaxProcs  int                            `json:"go_max_procs"`
	PreChange   []experiments.MicroBenchResult `json:"pre_change_gob_data_plane"`
	PrePooling  []experiments.MicroBenchResult `json:"pre_pooling_receive_path"`
	PreShm      []experiments.MicroBenchResult `json:"pre_shm_transport"`
	PostChange  []experiments.MicroBenchResult `json:"post_shm_transport"`
	Speedup     map[string]map[string]float64  `json:"speedup_vs_pre_change"`
	PoolSpeedup map[string]map[string]float64  `json:"speedup_vs_pre_pooling"`
	ShmSpeedup  map[string]map[string]float64  `json:"speedup_vs_pre_shm_transport"`
	// ShmVsTCP is the same-run ratio of the loopback-TCP 4KB round trip
	// to the shared-memory one — the headline number for the same-host
	// ring fast path, immune to machine drift because both sides are
	// measured in the same process minutes apart.
	ShmVsTCP  float64                  `json:"shm_vs_tcp_roundtrip_4kb"`
	Fig8cPre  []experiments.Fig8cPoint `json:"fig8c_pre_change"`
	Fig8cPost []experiments.Fig8cPoint `json:"fig8c_post_change"`
	// Fanout is the single-encode fanout edge: ns/op and producer wire
	// bytes/op versus subscriber count across the four fanout data paths.
	// FanoutSpeedup compares each shared path against the per-link TCP
	// baseline at 4 subscribers, same run.
	Fanout        []experiments.FanoutPoint `json:"fanout_edge,omitempty"`
	FanoutSpeedup map[string]float64        `json:"fanout_speedup_at_4_subs,omitempty"`
	// RelayFanout records the host-aware relay tree at 8 subscribers
	// spread over the simulated hosts: its ns/op speedup against the
	// per-link TCP baseline, how many times fewer producer wire bytes it
	// ships than per-link TCP (the O(hosts)-vs-O(consumers) reduction),
	// and the ratio of its wire bytes per op at 8 versus 4 subscribers —
	// ~1.0 when the wire cost is O(hosts) as designed, ~2.0 if it
	// regressed to O(consumers).
	RelayFanout map[string]float64 `json:"relay_fanout_at_8_subs,omitempty"`
}

func runCommBench(out string, msgs int) error {
	fmt.Println("=== typed-codec data-plane micro-benchmarks ===")
	post := experiments.CommMicroBench()
	pre := experiments.PreChangeCommBaseline
	preByName := map[string]experiments.MicroBenchResult{}
	for _, r := range pre {
		preByName[r.Name] = r
	}
	prePool := experiments.PrePoolingCommBaseline
	prePoolByName := map[string]experiments.MicroBenchResult{}
	for _, r := range prePool {
		prePoolByName[r.Name] = r
	}
	preShm := experiments.PreShmTransportCommBaseline
	preShmByName := map[string]experiments.MicroBenchResult{}
	for _, r := range preShm {
		preShmByName[r.Name] = r
	}
	speedup := map[string]map[string]float64{}
	poolSpeedup := map[string]map[string]float64{}
	shmSpeedup := map[string]map[string]float64{}
	postByName := map[string]experiments.MicroBenchResult{}
	for _, r := range post {
		fmt.Printf("%-28s %12.1f ns/op %8d B/op %5d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if p, ok := preByName[r.Name]; ok && r.NsPerOp > 0 {
			speedup[r.Name] = map[string]float64{
				"throughput": p.NsPerOp / r.NsPerOp,
				"allocs":     float64(p.AllocsPerOp) / maxf(float64(r.AllocsPerOp), 1),
			}
			fmt.Printf("%-28s %12.2fx vs pre-change gob data plane\n", "", p.NsPerOp/r.NsPerOp)
		}
		if p, ok := prePoolByName[r.Name]; ok && r.NsPerOp > 0 {
			poolSpeedup[r.Name] = map[string]float64{
				"throughput": p.NsPerOp / r.NsPerOp,
				"allocs":     float64(p.AllocsPerOp) / maxf(float64(r.AllocsPerOp), 1),
			}
			fmt.Printf("%-28s %12.2fx vs pre-pooling receive path\n", "", p.NsPerOp/r.NsPerOp)
		}
		if p, ok := preShmByName[r.Name]; ok && r.NsPerOp > 0 {
			shmSpeedup[r.Name] = map[string]float64{
				"throughput": p.NsPerOp / r.NsPerOp,
				"allocs":     float64(p.AllocsPerOp) / maxf(float64(r.AllocsPerOp), 1),
			}
		}
		postByName[r.Name] = r
	}
	shmVsTCP := 0.0
	if tcp, shm := postByName["CommRawRoundtrip4KB"], postByName["CommShmRoundtrip4KB"]; tcp.NsPerOp > 0 && shm.NsPerOp > 0 {
		shmVsTCP = tcp.NsPerOp / shm.NsPerOp
		fmt.Printf("%-28s %12.2fx shm ring vs loopback TCP (same run)\n", "CommShmRoundtrip4KB", shmVsTCP)
	}
	fmt.Println("=== sensor scaling rerun (Fig. 8c) ===")
	fig8cPost := experiments.PostFig8c(msgs)
	for i, p := range fig8cPost {
		pc := experiments.PreChangeFig8c[i%len(experiments.PreChangeFig8c)]
		fmt.Printf("%2d cams + %d lidars / %d ops: %8.3f ms (pre %8.3f ms)\n",
			p.Cameras, p.Lidars, p.Operators, p.ErdosRuntime, pc.ErdosRuntime)
	}
	f := commBenchFile{
		GeneratedBy: "cmd/erdos-bench -bench comm",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		PreChange:   pre,
		PrePooling:  prePool,
		PreShm:      preShm,
		PostChange:  post,
		Speedup:     speedup,
		PoolSpeedup: poolSpeedup,
		ShmSpeedup:  shmSpeedup,
		ShmVsTCP:    shmVsTCP,
		Fig8cPre:    experiments.PreChangeFig8c,
		Fig8cPost:   fig8cPost,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runFanoutEdge measures the single-encode fanout data paths and records
// them as the fanout edge of BENCH_comm.json (read-modify-write: the
// round-trip edges already in the file are preserved). In short mode it
// is CI's smoke pass — N=4 only, one run per config, no file written —
// failing only when neither shared path beats the per-link baseline at
// all, a sanity floor far below the recorded ≥3x headline.
func runFanoutEdge(out string, short bool, hosts int) error {
	fmt.Println("=== single-encode fanout edge (ns/op and wire bytes/op vs subscribers) ===")
	points := experiments.FanoutBench(short, hosts)
	perLink := map[int]experiments.FanoutPoint{}
	relayAt := map[int]experiments.FanoutPoint{}
	for _, p := range points {
		fmt.Printf("%-14s %d sub %12.1f ns/op %10.0f wire B/op %5d allocs/op\n",
			p.Config, p.Subscribers, p.NsPerOp, p.WireBytesPerOp, p.AllocsPerOp)
		if p.Config == "tcp-per-link" {
			perLink[p.Subscribers] = p
		}
		if p.Config == "relay-fanout" {
			relayAt[p.Subscribers] = p
		}
	}
	speedup := map[string]float64{}
	for _, p := range points {
		if p.Subscribers != 4 || p.Config == "tcp-per-link" {
			continue
		}
		if b := perLink[4]; b.NsPerOp > 0 && p.NsPerOp > 0 {
			speedup[p.Config] = b.NsPerOp / p.NsPerOp
			fmt.Printf("%-14s %12.2fx vs per-link TCP at 4 subscribers (same run)\n",
				p.Config, speedup[p.Config])
		}
	}
	// The relay tree's acceptance numbers live at 8 subscribers across the
	// simulated hosts: one wire frame per remote host cuts the producer's
	// cross-host wire bytes O(consumers) → O(hosts) (the deterministic
	// quantity the tree exists to optimize — ≥ 2× fewer than per-link TCP,
	// flat as subscribers-per-host doubles from the 4-subscriber row), and
	// end-to-end throughput beats per-link TCP wherever the pipeline
	// stages can overlap (on a single-CPU runner the serialized total work
	// bounds the ns/op ratio well below the wire ratio).
	relay := map[string]float64{}
	if r8, ok := relayAt[8]; ok {
		if b := perLink[8]; b.NsPerOp > 0 && r8.NsPerOp > 0 {
			relay["speedup_vs_per_link_tcp"] = b.NsPerOp / r8.NsPerOp
			fmt.Printf("%-14s %12.2fx vs per-link TCP at 8 subscribers over %d simulated hosts (same run)\n",
				"relay-fanout", relay["speedup_vs_per_link_tcp"], hosts)
		}
		if b := perLink[8]; b.WireBytesPerOp > 0 && r8.WireBytesPerOp > 0 {
			relay["wire_reduction_vs_per_link_tcp"] = b.WireBytesPerOp / r8.WireBytesPerOp
			fmt.Printf("%-14s %12.2fx fewer producer wire bytes/op than per-link TCP at 8 subscribers\n",
				"relay-fanout", relay["wire_reduction_vs_per_link_tcp"])
		}
		if r4, ok := relayAt[4]; ok && r4.WireBytesPerOp > 0 {
			relay["wire_bytes_ratio_8_vs_4_subs"] = r8.WireBytesPerOp / r4.WireBytesPerOp
			fmt.Printf("%-14s %12.2fx wire bytes/op at 8 vs 4 subscribers (flat = O(hosts))\n",
				"relay-fanout", relay["wire_bytes_ratio_8_vs_4_subs"])
		}
	}
	if short {
		if speedup["shm-broadcast"] < 1 && speedup["inproc"] < 1 {
			return fmt.Errorf("no shared fanout path beats per-link TCP at 4 subscribers (shm %.2fx, inproc %.2fx): single-encode fanout is broken",
				speedup["shm-broadcast"], speedup["inproc"])
		}
		if s, ok := relay["speedup_vs_per_link_tcp"]; ok && s < 1 {
			return fmt.Errorf("relay multicast slower than per-link TCP at 8 subscribers (%.2fx): the relay tree is broken", s)
		}
		if w, ok := relay["wire_reduction_vs_per_link_tcp"]; ok && w < 2 {
			return fmt.Errorf("relay multicast cut producer wire bytes only %.2fx vs per-link TCP at 8 subscribers, want >= 2x: envelopes are not covering whole hosts", w)
		}
		if r, ok := relay["wire_bytes_ratio_8_vs_4_subs"]; ok && r > 1.5 {
			return fmt.Errorf("relay wire bytes grew %.2fx from 4 to 8 subscribers: wire cost is O(consumers), not O(hosts)", r)
		}
		return nil
	}
	var f commBenchFile
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not a comm bench file: %w", out, err)
		}
	}
	f.Fanout = points
	f.FanoutSpeedup = speedup
	f.RelayFanout = relay
	f.GeneratedBy = "cmd/erdos-bench -bench comm / fanout"
	f.Date = time.Now().UTC().Format(time.RFC3339)
	f.GoVersion = runtime.Version()
	f.NumCPU = runtime.NumCPU()
	f.GoMaxProcs = runtime.GOMAXPROCS(0)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runShmSmoke is CI's quick pass over the same-host ring fast path: one
// run each of the TCP and shm 4KB round-trips, result discarded. It fails
// only when the ring does not beat loopback TCP at all — a sanity floor
// far below the recorded ≥5x headline, loose enough for noisy CI runners
// while still catching a broken ring or a silent TCP fallback.
func runShmSmoke() error {
	fmt.Println("=== shm ring smoke (same-host fast path) ===")
	tcp, shm := experiments.ShmSmokeBench()
	for _, r := range []experiments.MicroBenchResult{tcp, shm} {
		fmt.Printf("%-28s %12.1f ns/op %8d B/op %5d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if tcp.NsPerOp <= 0 || shm.NsPerOp <= 0 {
		return fmt.Errorf("degenerate round-trip timings (tcp %.1f ns, shm %.1f ns)", tcp.NsPerOp, shm.NsPerOp)
	}
	ratio := tcp.NsPerOp / shm.NsPerOp
	fmt.Printf("%-28s %12.2fx shm ring vs loopback TCP (same run)\n", "", ratio)
	if ratio < 1 {
		return fmt.Errorf("shm ring round-trip slower than loopback TCP (%.2fx): ring fast path is broken", ratio)
	}
	return nil
}

// e2eBenchFile is the JSON shape of BENCH_e2e.json.
type e2eBenchFile struct {
	GeneratedBy string                             `json:"generated_by"`
	Date        string                             `json:"date"`
	GoVersion   string                             `json:"go_version"`
	NumCPU      int                                `json:"num_cpu"`
	GoMaxProcs  int                                `json:"go_max_procs"`
	Short       bool                               `json:"short,omitempty"`
	Fig8cPre    []experiments.Fig8cPoint           `json:"fig8c_pre_change"`
	Fig8cPost   []experiments.Fig8cPoint           `json:"fig8c_post_change"`
	Urgency     experiments.UrgencyInversionResult `json:"urgency_inversion"`
	// Elastic is the multi-tenant density edge: p99 camera-to-command
	// latency of pylot tenants versus how many of them the two-worker
	// cluster hosts.
	Elastic []experiments.ElasticTenantPoint `json:"elastic_tenant_density,omitempty"`
}

func runE2eBench(out string, short bool) error {
	frames, rounds := 10, 200
	if short {
		frames, rounds = 3, 25
	}
	fmt.Println("=== sensor scaling rerun (Fig. 8c) ===")
	fig8cPost := experiments.PostFig8c(frames)
	for i, p := range fig8cPost {
		pc := experiments.PreChangeFig8c[i%len(experiments.PreChangeFig8c)]
		fmt.Printf("%2d cams + %d lidars / %d ops: %8.3f ms (pre %8.3f ms)\n",
			p.Cameras, p.Lidars, p.Operators, p.ErdosRuntime, pc.ErdosRuntime)
	}
	fmt.Println("=== urgency inversion: FIFO vs EDF dispatch ===")
	urg := experiments.UrgencyInversion(rounds)
	fmt.Printf("control queueing delay over %d-deep slack-rich backlog (%d rounds):\n",
		urg.Backlog, urg.Rounds)
	fmt.Printf("  FIFO p50 %8.3f ms   p99 %8.3f ms\n", urg.FifoP50Ms, urg.FifoP99Ms)
	fmt.Printf("  EDF  p50 %8.3f ms   p99 %8.3f ms   (p99 %.1fx better)\n",
		urg.EdfP50Ms, urg.EdfP99Ms, urg.P99Speedup)
	// Read-modify-write so the elastic tenant-density edge recorded by
	// `-bench elastic` survives an e2e rerun.
	var f e2eBenchFile
	if data, err := os.ReadFile(out); err == nil {
		_ = json.Unmarshal(data, &f)
	}
	f.GeneratedBy = "cmd/erdos-bench -bench e2e"
	f.Date = time.Now().UTC().Format(time.RFC3339)
	f.GoVersion = runtime.Version()
	f.NumCPU = runtime.NumCPU()
	f.GoMaxProcs = runtime.GOMAXPROCS(0)
	f.Short = short
	f.Fig8cPre = experiments.PreChangeFig8c
	f.Fig8cPost = fig8cPost
	f.Urgency = urg
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runElasticBench measures the multi-tenant density edge — p99 camera-to-
// command latency versus tenants hosted on a two-worker cluster — and
// records it in BENCH_e2e.json (read-modify-write: the e2e measurements
// already in the file are preserved). Short mode is CI's smoke pass: fewer
// tenants and frames, nothing written, failing only when a tenant's
// pipeline stalls outright.
func runElasticBench(out string, short bool) error {
	fmt.Println("=== elastic tenancy: camera-to-command latency vs tenants hosted ===")
	counts, frames := []int{1, 2, 4}, 60
	if short {
		counts, frames = []int{1, 2}, 20
	}
	points, err := experiments.ElasticTenantDensity(counts, frames)
	for _, p := range points {
		fmt.Printf("%d tenants on %d workers: p50 %8.3f ms   p99 %8.3f ms   (%d frames each)\n",
			p.Tenants, p.Workers, p.ControlP50Ms, p.ControlP99Ms, p.FramesPerTenant)
	}
	if err != nil {
		return err
	}
	for _, p := range points {
		if p.ControlP99Ms <= 0 {
			return fmt.Errorf("%d-tenant point recorded no latency: tenant pipeline produced no commands", p.Tenants)
		}
	}
	if short {
		return nil
	}
	var f e2eBenchFile
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not an e2e bench file: %w", out, err)
		}
	}
	f.Elastic = points
	f.GeneratedBy = "cmd/erdos-bench -bench e2e / elastic"
	f.Date = time.Now().UTC().Format(time.RFC3339)
	f.GoVersion = runtime.Version()
	f.NumCPU = runtime.NumCPU()
	f.GoMaxProcs = runtime.GOMAXPROCS(0)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runLeakCheck turns the per-run goroutine telemetry into a hard gate:
// each leak-drift workload builds and tears down a full transport or
// scheduler five times, and a count that climbs on every single repetition
// fails the run. This is the bench-smoke backstop for Close paths that
// strand goroutines too slowly for any one test to notice.
func runLeakCheck() error {
	fmt.Println("=== goroutine leak drift (5 harness build/teardown cycles) ===")
	results := experiments.LeakDriftBench()
	for _, r := range results {
		fmt.Printf("%-26s goroutines per run %v\n", r.Name, r.GoroutineRuns)
	}
	if leaking := experiments.GoroutineGrowth(results); len(leaking) > 0 {
		return fmt.Errorf("goroutine count grew on every repetition for: %s", strings.Join(leaking, ", "))
	}
	fmt.Println("no monotone goroutine growth across repetitions")
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func main() {
	bench := flag.String("bench", "all", "benchmark: size | fanout | scaling | lattice | comm | shm | e2e | elastic | leak | all")
	msgs := flag.Int("msgs", 50, "messages per measurement point")
	out := flag.String("out", "", "output file for -bench lattice / comm / e2e")
	short := flag.Bool("short", false, "smoke mode: fewer frames and rounds, for CI")
	hosts := flag.Int("hosts", 3, "simulated hosts for the relay-fanout edge (-bench fanout); <2 skips it")
	flag.Parse()

	ran := false
	if *bench == "all" || *bench == "size" {
		fmt.Println("=== message delay vs size (Fig. 8a) ===")
		fmt.Println(experiments.Fig8aMessageDelay(*msgs).Render())
		ran = true
	}
	if *bench == "all" || (*bench == "fanout" && !*short) {
		fmt.Println("=== operator fanout delay, 6MB camera frame (Fig. 8b) ===")
		fmt.Println(experiments.Fig8bFanout(*msgs).Render())
		ran = true
	}
	if *bench == "fanout" {
		dst := *out
		if dst == "" {
			dst = "BENCH_comm.json"
		}
		if err := runFanoutEdge(dst, *short, *hosts); err != nil {
			fmt.Fprintf(os.Stderr, "fanout edge: %v\n", err)
			os.Exit(1)
		}
		ran = true
	}
	if *bench == "all" || *bench == "scaling" {
		fmt.Println("=== synthetic Pylot sensor scaling (Fig. 8c) ===")
		fmt.Println(experiments.Fig8cSensorScaling(*msgs).Render())
		ran = true
	}
	if *bench == "lattice" {
		dst := *out
		if dst == "" {
			dst = "BENCH_lattice.json"
		}
		if err := runLatticeBench(dst); err != nil {
			fmt.Fprintf(os.Stderr, "lattice bench: %v\n", err)
			os.Exit(1)
		}
		ran = true
	}
	if *bench == "comm" {
		dst := *out
		if dst == "" {
			dst = "BENCH_comm.json"
		}
		if err := runCommBench(dst, 10); err != nil {
			fmt.Fprintf(os.Stderr, "comm bench: %v\n", err)
			os.Exit(1)
		}
		ran = true
	}
	if *bench == "shm" {
		if err := runShmSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "shm smoke: %v\n", err)
			os.Exit(1)
		}
		ran = true
	}
	if *bench == "leak" {
		if err := runLeakCheck(); err != nil {
			fmt.Fprintf(os.Stderr, "leak check: %v\n", err)
			os.Exit(1)
		}
		ran = true
	}
	if *bench == "e2e" {
		dst := *out
		if dst == "" {
			dst = "BENCH_e2e.json"
		}
		if err := runE2eBench(dst, *short); err != nil {
			fmt.Fprintf(os.Stderr, "e2e bench: %v\n", err)
			os.Exit(1)
		}
		ran = true
	}
	if *bench == "elastic" {
		dst := *out
		if dst == "" {
			dst = "BENCH_e2e.json"
		}
		if err := runElasticBench(dst, *short); err != nil {
			fmt.Fprintf(os.Stderr, "elastic bench: %v\n", err)
			os.Exit(1)
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
}
