// Command erdos-bench runs the §7.2 messaging benchmarks (Fig. 8):
// callback-invocation delay across message sizes, operator fanout, and
// synthetic-pipeline sensor scaling, comparing ERDOS' messaging path
// against the ROS-, ROS2- and Flink-style baselines.
//
// Usage:
//
//	erdos-bench                 # all three benchmarks
//	erdos-bench -bench fanout   # one of: size | fanout | scaling
//	erdos-bench -msgs 200       # more samples per point
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/erdos-go/erdos/internal/experiments"
)

func main() {
	bench := flag.String("bench", "all", "benchmark: size | fanout | scaling | all")
	msgs := flag.Int("msgs", 50, "messages per measurement point")
	flag.Parse()

	ran := false
	if *bench == "all" || *bench == "size" {
		fmt.Println("=== message delay vs size (Fig. 8a) ===")
		fmt.Println(experiments.Fig8aMessageDelay(*msgs).Render())
		ran = true
	}
	if *bench == "all" || *bench == "fanout" {
		fmt.Println("=== operator fanout delay, 6MB camera frame (Fig. 8b) ===")
		fmt.Println(experiments.Fig8bFanout(*msgs).Render())
		ran = true
	}
	if *bench == "all" || *bench == "scaling" {
		fmt.Println("=== synthetic Pylot sensor scaling (Fig. 8c) ===")
		fmt.Println(experiments.Fig8cSensorScaling(*msgs).Render())
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
}
