// Package repro's root benchmark harness: one benchmark per figure of the
// paper's evaluation. Each benchmark regenerates the figure's data (at a
// benchmark-friendly scale) and reports the headline quantities as custom
// metrics, so `go test -bench=.` reproduces the evaluation end to end.
//
// Absolute numbers will differ from the paper's testbed (2x Xeon Gold 6226,
// 2x Titan-RTX); the benchmarks preserve the figures' shapes: who wins, by
// roughly what factor, and where the crossovers fall. See EXPERIMENTS.md.
package repro

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/experiments"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkFig2aDetectorChoice regenerates Fig. 2a: the optimum detector
// varies within and across scenarios.
func BenchmarkFig2aDetectorChoice(b *testing.B) {
	var distinct int
	for i := 0; i < b.N; i++ {
		distinct = experiments.Fig2aDetectorChoice(42).Distinct
	}
	b.ReportMetric(float64(distinct), "distinct-optima")
}

// BenchmarkFig2bTrackerRuntime regenerates Fig. 2b: tracker runtime grows
// with the number of tracked agents.
func BenchmarkFig2bTrackerRuntime(b *testing.B) {
	var r experiments.Fig2bResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2bTrackerRuntime(42)
	}
	b.ReportMetric(r.MedianMS[0][3], "sort@10agents-ms")
	b.ReportMetric(r.MedianMS[2][3], "dasiamrpn@10agents-ms")
}

// BenchmarkFig2cPredictionHorizon regenerates Fig. 2c: prediction runtime
// is linear in the horizon.
func BenchmarkFig2cPredictionHorizon(b *testing.B) {
	var r experiments.Fig2cResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2cPredictionHorizon(42)
	}
	b.ReportMetric(r.MedianMS[0][0], "mfp@1s-ms")
	b.ReportMetric(r.MedianMS[0][4], "mfp@5s-ms")
}

// BenchmarkFig2dPlanningComfort regenerates Fig. 2d: longer planning
// budgets produce lower lateral jerk.
func BenchmarkFig2dPlanningComfort(b *testing.B) {
	var r experiments.Fig2dResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2dPlanningComfort()
	}
	b.ReportMetric(r.MaxJerk[0], "jerk-coarse")
	b.ReportMetric(r.MaxJerk[2], "jerk-fine")
	b.ReportMetric(ms(r.Runtimes[2]), "fine-runtime-ms")
}

// BenchmarkFig3ResponseVariability regenerates Fig. 3: the Apollo-style
// traffic-light detector's p99/mean skew and dropped messages.
func BenchmarkFig3ResponseVariability(b *testing.B) {
	var r experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3ResponseVariability(int64(11 + i))
	}
	b.ReportMetric(r.TailRatio, "p99/mean")
	b.ReportMetric(float64(r.Dropped), "dropped-msgs")
}

// BenchmarkFig8aMessageDelay regenerates Fig. 8a: callback invocation delay
// across message sizes and placements, ERDOS vs ROS/ROS2/Flink paths.
func BenchmarkFig8aMessageDelay(b *testing.B) {
	var r experiments.Fig8aResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8aMessageDelay(20)
	}
	b.ReportMetric(ms(r.IntraMedian["erdos"][2]), "erdos-intra-1MB-ms")
	b.ReportMetric(ms(r.InterMedian["erdos"][2]), "erdos-inter-1MB-ms")
	b.ReportMetric(ms(r.InterMedian["ros"][2]), "ros-inter-1MB-ms")
	b.ReportMetric(ms(r.InterMedian["ros2"][2]), "ros2-inter-1MB-ms")
	b.ReportMetric(ms(r.InterMedian["flink"][2]), "flink-inter-1MB-ms")
}

// BenchmarkFig8bFanout regenerates Fig. 8b: broadcasting a 6 MB camera
// frame to 2-5 receivers.
func BenchmarkFig8bFanout(b *testing.B) {
	var r experiments.Fig8bResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8bFanout(10)
	}
	b.ReportMetric(ms(r.IntraMedian["erdos"][3]), "erdos-intra-5recv-ms")
	b.ReportMetric(ms(r.IntraMedian["ros2"][3]), "ros2-intra-5recv-ms")
	b.ReportMetric(ms(r.InterMedian["erdos"][3]), "erdos-inter-5recv-ms")
}

// BenchmarkFig8cSensorScaling regenerates Fig. 8c: the synthetic Pylot
// pipeline at 10 cameras + 5 LiDARs across 75 operators.
func BenchmarkFig8cSensorScaling(b *testing.B) {
	var r experiments.Fig8cResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8cSensorScaling(8)
	}
	last := r.Configs[len(r.Configs)-1]
	b.ReportMetric(ms(last.ErdosIntra), "erdos-msg-75ops-ms")
	b.ReportMetric(ms(last.ErdosRuntime), "erdos-runtime-75ops-ms")
	b.ReportMetric(ms(last.Ros2Intra), "ros2-75ops-ms")
	b.ReportMetric(ms(last.FlinkIntra), "flink-75ops-ms")
}

// BenchmarkFig9MeetingDeadlines regenerates Fig. 9: detection and planning
// adapting to per-second deadline changes.
func BenchmarkFig9MeetingDeadlines(b *testing.B) {
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9MeetingDeadlines(int64(5 + i))
	}
	b.ReportMetric(r.DetectionUtilization()*100, "detection-util-%")
	b.ReportMetric(r.PlanningUtilization()*100, "planning-util-%")
}

// BenchmarkFig10HandlerDelay regenerates Fig. 10 left: DEH invocation delay
// of ERDOS' deadline queue vs actionlib-style polling.
func BenchmarkFig10HandlerDelay(b *testing.B) {
	var r experiments.Fig10LeftResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10HandlerDelay(60)
	}
	b.ReportMetric(ms(r.ErdosMedian), "erdos-ms")
	b.ReportMetric(ms(r.ActionlibMedian), "actionlib-ms")
	b.ReportMetric(r.Speedup, "speedup-x")
}

// BenchmarkFig10DEHEffect regenerates Fig. 10 right: end-to-end deadline
// misses with and without deadline exception handlers.
func BenchmarkFig10DEHEffect(b *testing.B) {
	var r experiments.Fig10RightResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10DEHEffect(42, 10)
	}
	b.ReportMetric(r.WithoutMissRatio*100, "without-DEH-miss-%")
	b.ReportMetric(r.WithMissRatio*100, "with-DEH-miss-%")
}

// BenchmarkPolicyMechanismOverhead regenerates the §7.3 measurement: the
// latency added by a no-op pDP on the real runtime (paper: <1%).
func BenchmarkPolicyMechanismOverhead(b *testing.B) {
	var r experiments.PolicyOverheadResult
	for i := 0; i < b.N; i++ {
		r = experiments.PolicyMechanismOverhead(120)
	}
	b.ReportMetric(r.OverheadPct, "overhead-%")
	b.ReportMetric(ms(r.MedianDelta), "median-delta-ms")
}

// BenchmarkFig11Collisions regenerates Fig. 11: collisions over the 50 km
// challenge drive under the four execution models.
func BenchmarkFig11Collisions(b *testing.B) {
	var r experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11Collisions(42, 50)
	}
	b.ReportMetric(float64(r.Periodic), "periodic")
	b.ReportMetric(float64(r.DataDriven), "data-driven")
	b.ReportMetric(float64(r.BestStatic), "best-static")
	b.ReportMetric(float64(r.Dynamic), "d3-dynamic")
	b.ReportMetric(r.ReductionVsPeriodic*100, "reduction-%")
}

// BenchmarkFig12ResponseHistogram regenerates Fig. 12: the response-time
// distribution of the best static configuration vs dynamic deadlines.
func BenchmarkFig12ResponseHistogram(b *testing.B) {
	best := experiments.Fig11Collisions(42, 10).BestStaticDeadline
	b.ResetTimer()
	var r experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12ResponseHistogram(42, 10, best)
	}
	b.ReportMetric(ms(r.StaticMed), "static-median-ms")
	b.ReportMetric(ms(r.DynMed), "dynamic-median-ms")
	b.ReportMetric(r.DynFastShare*100, "dynamic-fast-share-%")
}

// BenchmarkFig13ScenarioGrid regenerates Fig. 13: the person-behind-truck
// and traffic-jam grids across speeds and configurations.
func BenchmarkFig13ScenarioGrid(b *testing.B) {
	var r experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13ScenarioGrid(3)
	}
	collided := 0
	for _, c := range append(r.PersonBehindTruck, r.TrafficJam...) {
		if c.CollisionSpeed > 0 {
			collided++
		}
	}
	b.ReportMetric(float64(collided), "colliding-cells")
}

// BenchmarkFig14AdaptTimeline regenerates Fig. 14: the pipeline's response
// time dropping as the dynamic policy tightens the deadline mid-encounter.
func BenchmarkFig14AdaptTimeline(b *testing.B) {
	var r experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14AdaptTimeline(6)
	}
	first, min := r.Deadlines[0], r.Deadlines[0]
	for _, d := range r.Deadlines {
		if d < min {
			min = d
		}
	}
	b.ReportMetric(ms(first), "initial-deadline-ms")
	b.ReportMetric(ms(min), "tightened-deadline-ms")
}
